"""Tests for the model layer: ports, knowledge enforcement, CONGEST."""

import random

import pytest

from repro.errors import ModelViolation, SimulationError
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    path_graph,
    star_graph,
)
from repro.models.congest import congest_model, local_model
from repro.models.knowledge import (
    Knowledge,
    NetworkSetup,
    assign_ids,
    make_setup,
)
from repro.models.ports import PortAssignment


class TestPortAssignment:
    def test_canonical_matches_adjacency(self):
        g = path_graph(4)
        pa = PortAssignment.canonical(g)
        assert pa.neighbor(1, 1) == 0
        assert pa.neighbor(1, 2) == 2
        assert pa.port(1, 0) == 1

    def test_bijection(self):
        g = complete_graph(6)
        pa = PortAssignment.random(g, seed=3)
        for v in g.vertices():
            nbrs = [pa.neighbor(v, p) for p in pa.ports(v)]
            assert sorted(nbrs) == sorted(g.neighbors(v))
            for p in pa.ports(v):
                assert pa.port(v, pa.neighbor(v, p)) == p

    def test_ports_one_based(self):
        g = star_graph(5)
        pa = PortAssignment.canonical(g)
        assert list(pa.ports(0)) == [1, 2, 3, 4]
        with pytest.raises(SimulationError):
            pa.neighbor(0, 0)
        with pytest.raises(SimulationError):
            pa.neighbor(0, 5)

    def test_non_neighbor_port_raises(self):
        g = path_graph(3)
        pa = PortAssignment.canonical(g)
        with pytest.raises(SimulationError):
            pa.port(0, 2)

    def test_table_matches_per_port_lookups(self):
        """The engines' per-vertex send tables must agree with the
        checked single-lookup API, for every vertex and port."""
        g = complete_graph(6)
        pa = PortAssignment.random(g, seed=3)
        for v in g.vertices():
            neighbors, back_ports = pa.table(v)
            assert len(neighbors) == len(back_ports) == pa.degree(v)
            for p in pa.ports(v):
                u = neighbors[p - 1]
                assert u == pa.neighbor(v, p)
                assert back_ports[p - 1] == pa.port(u, v)
        # The table is cached: repeated queries return the same tuple.
        v0 = next(iter(g.vertices()))
        assert pa.table(v0) is pa.table(v0)

    def test_table_unknown_vertex_raises(self):
        g = path_graph(3)
        pa = PortAssignment.canonical(g)
        with pytest.raises(SimulationError):
            pa.table(99)

    def test_random_is_seed_deterministic(self):
        g = complete_graph(8)
        a = PortAssignment.random(g, seed=5)
        b = PortAssignment.random(g, seed=5)
        for v in g.vertices():
            assert a.neighbors_in_port_order(v) == b.neighbors_in_port_order(v)

    def test_random_actually_shuffles(self):
        g = complete_graph(10)
        a = PortAssignment.canonical(g)
        b = PortAssignment.random(g, seed=1)
        diffs = sum(
            a.neighbors_in_port_order(v) != b.neighbors_in_port_order(v)
            for v in g.vertices()
        )
        assert diffs > 0

    def test_invalid_order_rejected(self):
        g = path_graph(3)
        with pytest.raises(SimulationError):
            PortAssignment(g, {0: [1], 1: [0, 0], 2: [1]})
        with pytest.raises(SimulationError):
            PortAssignment(g, {0: [1]})


class TestBandwidthModels:
    def test_local_unbounded(self):
        m = local_model()
        m.check(10**9)  # no exception
        assert not m.is_congest

    def test_congest_cap(self):
        m = congest_model(1024, factor=2)
        assert m.cap_bits == 2 * 10
        assert m.is_congest
        m.check(20)
        with pytest.raises(ModelViolation):
            m.check(21)

    def test_congest_tiny_n(self):
        m = congest_model(1)
        assert m.cap_bits >= 1


class TestIdAssignment:
    def test_unique_and_polynomial_range(self):
        g = connected_erdos_renyi(50, 0.1, seed=2)
        ids = assign_ids(g, seed=1)
        vals = list(ids.values())
        assert len(set(vals)) == 50
        assert all(0 <= v < 50**2 for v in vals)

    def test_fixed_ids_respected(self):
        g = path_graph(5)
        ids = assign_ids(g, seed=1, fixed={0: 42})
        assert ids[0] == 42
        assert len(set(ids.values())) == 5

    def test_duplicate_fixed_rejected(self):
        g = path_graph(3)
        with pytest.raises(SimulationError):
            assign_ids(g, fixed={0: 1, 1: 1})

    def test_deterministic(self):
        g = path_graph(10)
        assert assign_ids(g, seed=3) == assign_ids(g, seed=3)


class TestNetworkSetup:
    def test_id_lookup_roundtrip(self):
        g = path_graph(6)
        setup = make_setup(g, seed=1)
        for v in g.vertices():
            assert setup.vertex_of(setup.id_of(v)) == v

    def test_unknown_id_raises(self):
        setup = make_setup(path_graph(3), seed=1)
        with pytest.raises(SimulationError):
            setup.vertex_of(-12345)

    def test_neighbor_ids_in_port_order(self):
        g = star_graph(5)
        setup = make_setup(g, seed=2)
        nids = setup.neighbor_ids(0)
        expected = [
            setup.id_of(setup.ports.neighbor(0, p))
            for p in setup.ports.ports(0)
        ]
        assert nids == expected

    def test_log2_bound_default(self):
        setup = make_setup(path_graph(100), seed=1)
        assert setup.log2_n_bound == 7

    def test_with_advice_copies(self):
        from repro.advice.bits import Bits

        setup = make_setup(path_graph(3), seed=1)
        advice = {v: Bits([1]) for v in setup.graph.vertices()}
        s2 = setup.with_advice(advice)
        assert setup.advice is None
        assert s2.advice is not None

    def test_duplicate_ids_rejected(self):
        g = path_graph(2)
        from repro.models.ports import PortAssignment

        with pytest.raises(SimulationError):
            NetworkSetup(
                graph=g,
                ids={0: 7, 1: 7},
                ports=PortAssignment.canonical(g),
                knowledge=Knowledge.KT0,
                bandwidth=local_model(),
            )

    def test_unknown_bandwidth_string(self):
        with pytest.raises(SimulationError):
            make_setup(path_graph(3), bandwidth="WIDE")
