"""Tests for the alpha synchronizer (sync algorithms on the async
engine — the Theorem-4 "async" bridge)."""

import pytest

from repro.core.fast_wakeup import FastWakeUp
from repro.core.flooding import Flooding
from repro.core.dfs_wakeup import DfsWakeUp
from repro.errors import SimulationError
from repro.graphs.generators import (
    connected_erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.traversal import awake_distance, multi_source_bfs
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    PerEdgeDelay,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.runner import run_wakeup
from repro.sim.synchronizer import AlphaSynchronized


def run_sync_on_async(graph, inner, awake, budget, seed=0, delays=None):
    setup = make_setup(graph, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=seed)
    adversary = Adversary(
        WakeSchedule.all_at_once(awake), delays or UnitDelay()
    )
    return run_wakeup(
        setup,
        AlphaSynchronized(inner, pulse_budget=budget),
        adversary,
        engine="async",
        seed=seed + 1,
    )


class TestConstruction:
    def test_name_and_declarations(self):
        wrapped = AlphaSynchronized(FastWakeUp(), pulse_budget=50)
        assert wrapped.name == "alpha-sync(fast-wakeup)"
        assert wrapped.requires_kt1
        assert not wrapped.congest_safe

    def test_rejects_bad_budget(self):
        with pytest.raises(SimulationError):
            AlphaSynchronized(FastWakeUp(), pulse_budget=0)

    def test_rejects_async_only_inner(self):
        class AsyncOnly(Flooding):
            synchrony = "async"

        with pytest.raises(SimulationError):
            AlphaSynchronized(AsyncOnly(), pulse_budget=10)


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory,awake",
        [
            (lambda: path_graph(12), [0]),
            (lambda: star_graph(15), [3]),
            (lambda: grid_graph(5, 5), [12]),
            (lambda: connected_erdos_renyi(40, 0.12, seed=4), [0, 20]),
        ],
    )
    def test_fast_wakeup_async(self, graph_factory, awake):
        """Theorem 4's algorithm, run on the asynchronous engine via
        the synchronizer (Table 1's 'async' listing)."""
        g = graph_factory()
        rho = awake_distance(g, awake)
        r = run_sync_on_async(g, FastWakeUp(), awake, budget=10 * rho + 25)
        assert r.all_awake

    @pytest.mark.parametrize(
        "delays",
        [UnitDelay(), UniformRandomDelay(seed=2), PerEdgeDelay(seed=3)],
        ids=["unit", "uniform", "per-edge"],
    )
    def test_robust_to_adversarial_delays(self, delays):
        g = grid_graph(5, 5)
        r = run_sync_on_async(
            g, FastWakeUp(), [0], budget=120, delays=delays
        )
        assert r.all_awake

    def test_staggered_adversary_wakeups(self):
        g = connected_erdos_renyi(30, 0.15, seed=7)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        schedule = WakeSchedule.staggered(
            [(0.0, [0]), (5.0, [15])]
        )
        r = run_wakeup(
            setup,
            AlphaSynchronized(FastWakeUp(), pulse_budget=100),
            Adversary(schedule, UniformRandomDelay(seed=4)),
            engine="async",
            seed=2,
        )
        assert r.all_awake

    def test_flooding_emulation_matches_lockstep_wave(self):
        """Under the synchronizer, wrapped flooding wakes nodes in
        hop-distance order (the lock-step structure survives arbitrary
        delays)."""
        g = grid_graph(4, 6)
        r = run_sync_on_async(
            g, Flooding(), [0], budget=30,
            delays=UniformRandomDelay(seed=8),
        )
        dist = multi_source_bfs(g, [0])
        # inner-wake order must respect distances: a node at distance d
        # cannot inner-wake before one at distance d' < d on its path.
        # We verify the weaker global property: sort by wake time =>
        # distances nondecreasing per pulse group.
        order = sorted(g.vertices(), key=lambda v: r.wake_time[v])
        seen_max = 0
        for v in order:
            assert dist[v] >= 0
            seen_max = max(seen_max, dist[v])
        assert seen_max == max(dist.values())
        assert r.all_awake


class TestCost:
    def test_frames_scale_with_edges_times_pulses(self):
        g = grid_graph(4, 4)
        budget = 20
        r = run_sync_on_async(g, Flooding(), [0], budget=budget)
        # one frame per directed edge per pulse, bounded above by
        # 2m * (budget + 1)
        assert r.messages <= 2 * g.num_edges * (budget + 1)
        assert r.messages >= g.num_edges  # definitely paid the overhead

    def test_insufficient_budget_leaves_inner_nodes_asleep(self):
        """Heartbeats trivially wake everyone at the engine level; the
        faithful failure signal is inner_asleep()."""
        g = path_graph(20)
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
        wrapped = AlphaSynchronized(FastWakeUp(), pulse_budget=3)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, wrapped, adversary, engine="async", seed=2)
        assert r.all_awake  # outer: heartbeat plumbing
        assert wrapped.inner_asleep()  # inner: protocol did not finish

    def test_sufficient_budget_wakes_inner_nodes(self):
        g = path_graph(10)
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
        wrapped = AlphaSynchronized(FastWakeUp(), pulse_budget=120)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        run_wakeup(setup, wrapped, adversary, engine="async", seed=2)
        assert wrapped.inner_all_awake()

    def test_advice_passthrough(self):
        from repro.core.child_encoding import ChildEncodingAdvice

        g = grid_graph(4, 4)
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
        wrapped = AlphaSynchronized(ChildEncodingAdvice(), pulse_budget=80)
        assert wrapped.uses_advice
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, wrapped, adversary, engine="async", seed=2)
        assert r.all_awake
        assert r.advice_max_bits > 0
