"""Tests for the analysis toolkit (fits, stats, information, report)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fitting import (
    best_exponent_model,
    doubling_ratio,
    fit_power_law,
    fit_power_law_deloged,
    relative_residuals,
)
from repro.analysis.information import (
    conditional_entropy,
    entropy,
    joint_entropy,
    mutual_information,
    support_size,
    uniform_entropy,
)
from repro.analysis.report import format_value, render_table
from repro.analysis.stats import (
    bootstrap_ci,
    geometric_mean,
    median,
    summarize,
)


class TestPowerLaw:
    def test_exact_power_law(self):
        ns = [10, 20, 40, 80, 160]
        ys = [3 * n**1.5 for n in ns]
        fit = fit_power_law(ns, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.constant == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(8) == pytest.approx(16.0)

    def test_noisy_data_good_r2(self):
        import random

        rng = random.Random(1)
        ns = [2**i for i in range(4, 12)]
        ys = [5 * n**2 * rng.uniform(0.9, 1.1) for n in ns]
        fit = fit_power_law(ns, ys)
        assert abs(fit.exponent - 2.0) < 0.1
        assert fit.r_squared > 0.99

    def test_deloged_fit_strips_log(self):
        ns = [2**i for i in range(5, 14)]
        ys = [n * math.log(n) for n in ns]
        raw = fit_power_law(ns, ys)
        deloged = fit_power_law_deloged(ns, ys, log_power=1.0)
        assert deloged.exponent == pytest.approx(1.0, abs=1e-6)
        assert raw.exponent > deloged.exponent

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, 2])

    def test_residuals(self):
        res = relative_residuals([1, 2], [10, 22], lambda n: 10 * n)
        assert res[0] == pytest.approx(0.0)
        assert res[1] == pytest.approx(0.1)

    def test_best_exponent_model(self):
        ns = [2**i for i in range(5, 12)]
        ys = [7 * n ** (4 / 3) for n in ns]
        best, errs = best_exponent_model(ns, ys, [1.0, 4 / 3, 1.5, 2.0])
        assert best == pytest.approx(4 / 3)
        assert errs[4 / 3] < errs[1.0]

    def test_doubling_ratio(self):
        assert doubling_ratio([2, 4, 8], [4, 16, 64]) == pytest.approx(
            [2.0, 2.0]
        )


class TestStats:
    def test_summarize(self):
        s = summarize([1, 2, 3, 4])
        assert s.mean == 2.5
        assert s.minimum == 1 and s.maximum == 4
        assert s.count == 4
        assert s.std == pytest.approx(math.sqrt(1.25))

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_bootstrap_contains_mean(self):
        data = [10.0] * 5 + [20.0] * 5
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo <= 15.0 <= hi
        assert lo >= 10.0 and hi <= 20.0

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([1, -1])

    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5
        with pytest.raises(ValueError):
            median([])


class TestInformation:
    def test_entropy_uniform(self):
        samples = list(range(8)) * 100
        assert entropy(samples) == pytest.approx(3.0)

    def test_entropy_constant_is_zero(self):
        assert entropy([7] * 50) == 0.0

    def test_entropy_empty(self):
        with pytest.raises(ValueError):
            entropy([])

    def test_joint_and_conditional(self):
        # Y determines X completely: H[X|Y] = 0, I = H[X].
        pairs = [(x, x) for x in range(4)] * 50
        assert conditional_entropy(pairs) == pytest.approx(0.0, abs=1e-9)
        assert mutual_information(pairs) == pytest.approx(2.0)

    def test_independent_variables(self):
        pairs = [(x, y) for x in range(4) for y in range(4)] * 10
        assert mutual_information(pairs) == pytest.approx(0.0, abs=1e-9)
        assert joint_entropy(pairs) == pytest.approx(4.0)

    def test_partial_information(self):
        # Y = X mod 2 reveals exactly 1 bit of a uniform 2-bit X.
        pairs = [(x, x % 2) for x in range(4)] * 25
        assert mutual_information(pairs) == pytest.approx(1.0)

    def test_support_and_uniform(self):
        assert support_size([1, 1, 2, 5]) == 3
        assert uniform_entropy(8) == 3.0
        with pytest.raises(ValueError):
            uniform_entropy(0)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_entropy_bounds(self, samples):
        h = entropy(samples)
        assert 0.0 <= h <= math.log2(6) + 1e-9

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_mi_bounds(self, pairs):
        mi = mutual_information(pairs)
        xs = [x for x, _ in pairs]
        ys = [y for _, y in pairs]
        assert -1e-9 <= mi <= min(entropy(xs), entropy(ys)) + 1e-9


class TestReport:
    def test_render_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
        text = render_table(rows, title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "10" in text

    def test_render_empty(self):
        assert "(no data)" in render_table([])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_value(self):
        assert format_value(0.0) == "0"
        assert format_value(123456.0) == "1.23e+05"
        assert format_value(1.5) == "1.50"
        assert format_value("x") == "x"
