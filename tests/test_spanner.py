"""Tests for spanner construction (Baswana–Sen and tree spanners)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
)
from repro.graphs.spanner import (
    baswana_sen_spanner,
    bfs_tree_spanner,
    verify_spanner,
)
from repro.graphs.traversal import is_connected


class TestTreeSpanner:
    def test_spanning_edge_count(self):
        g = connected_erdos_renyi(30, 0.2, seed=1)
        t = bfs_tree_spanner(g)
        assert t.num_vertices == g.num_vertices
        assert t.num_edges == g.num_vertices - 1
        assert is_connected(t)

    def test_subgraph_of_original(self):
        g = grid_graph(5, 5)
        t = bfs_tree_spanner(g)
        for u, v in t.edges():
            assert g.has_edge(u, v)

    def test_disconnected_gives_forest(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges([(0, 1), (2, 3)])
        t = bfs_tree_spanner(g)
        assert t.num_edges == 2

    def test_of_tree_is_identity(self):
        g = random_tree(20, seed=3)
        t = bfs_tree_spanner(g)
        assert t == g


class TestBaswanaSen:
    def test_k1_is_whole_graph(self):
        g = complete_graph(8)
        s = baswana_sen_spanner(g, 1, seed=0)
        assert s == g

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            baswana_sen_spanner(complete_graph(3), 0)

    def test_empty_graph(self):
        from repro.graphs.graph import Graph

        assert baswana_sen_spanner(Graph(), 2).num_vertices == 0

    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stretch_guarantee(self, k, seed):
        g = connected_erdos_renyi(40, 0.25, seed=seed)
        s = baswana_sen_spanner(g, k, seed=seed)
        assert verify_spanner(g, s, stretch=2 * k - 1)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_stretch_on_dense_graph(self, seed):
        g = complete_graph(30)
        s = baswana_sen_spanner(g, 2, seed=seed)
        assert verify_spanner(g, s, stretch=3)

    def test_preserves_connectivity(self):
        for seed in range(4):
            g = connected_erdos_renyi(35, 0.3, seed=seed)
            s = baswana_sen_spanner(g, 3, seed=seed)
            assert is_connected(s)

    def test_sparsification_on_dense_input(self):
        """On K_n the (2k-1)-spanner must drop most edges."""
        n = 40
        g = complete_graph(n)
        sizes = []
        for seed in range(5):
            s = baswana_sen_spanner(g, 2, seed=seed)
            sizes.append(s.num_edges)
        avg = sum(sizes) / len(sizes)
        # Expected O(k * n^{1.5}) = O(2 * 253); K_40 has 780 edges.
        assert avg < g.num_edges * 0.95
        assert avg < 3 * 2 * n**1.5

    def test_k_large_approaches_sparse(self):
        g = complete_graph(30)
        s_small_k = baswana_sen_spanner(g, 2, seed=1)
        s_big_k = baswana_sen_spanner(g, 5, seed=1)
        assert s_big_k.num_edges <= s_small_k.num_edges * 1.5

    def test_deterministic_given_seed(self):
        g = connected_erdos_renyi(25, 0.3, seed=9)
        a = baswana_sen_spanner(g, 3, seed=5)
        b = baswana_sen_spanner(g, 3, seed=5)
        assert a == b


class TestVerifySpanner:
    def test_detects_non_subgraph(self):
        g = path_graph(4)
        from repro.graphs.graph import Graph

        fake = Graph.from_edges([(0, 3)], vertices=[1, 2])
        assert not verify_spanner(g, fake, stretch=10)

    def test_detects_stretch_violation(self):
        g = cycle_graph(10)
        t = bfs_tree_spanner(g)  # a path: antipodal edge stretched to 9
        assert not verify_spanner(g, t, stretch=2)
        assert verify_spanner(g, t, stretch=9)


@given(seed=st.integers(0, 200), k=st.integers(2, 4))
@settings(max_examples=20, deadline=None)
def test_spanner_property(seed, k):
    """Property: BS output is always a subgraph (2k-1)-spanner."""
    g = connected_erdos_renyi(20, 0.3, seed=seed)
    s = baswana_sen_spanner(g, k, seed=seed)
    assert verify_spanner(g, s, stretch=2 * k - 1)
