"""Engine fuzzing: random protocols vs engine invariants.

Hypothesis generates arbitrary little protocols (random fan-out, random
payload sizes, bounded TTL so executions terminate) and random
adversaries; the tests then check the invariants the engines must
uphold regardless of the protocol:

* conservation — every sent message is delivered exactly once;
* FIFO — per directed channel, delivery order equals send order;
* causality — a delivery never precedes its send, and never lags it by
  more than the normalized delay bound τ = 1 (plus FIFO queueing);
* wake-once — each node's on_wake fires exactly once, before any of
  its on_message callbacks;
* determinism — identical seeds give identical traces.
"""

from __future__ import annotations

import random
from collections import defaultdict

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.generators import connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.async_engine import AsyncEngine
from repro.sim.node import NodeAlgorithm
from repro.sim.sync_engine import SyncEngine
from repro.sim.trace import Trace

FUZZ_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class FuzzNode(NodeAlgorithm):
    """Random protocol: on wake/message, send to a random subset of
    ports with a TTL that strictly decreases, guaranteeing quiescence."""

    def __init__(self, fanout: int, ttl: int):
        self._fanout = fanout
        self._ttl = ttl
        self.wakes = 0
        self.deliveries = 0
        self.woke_before_messages = True

    def on_wake(self, ctx):
        self.wakes += 1
        if self.deliveries > 0:
            self.woke_before_messages = False
        self._emit(ctx, self._ttl)

    def on_message(self, ctx, port, payload):
        self.deliveries += 1
        if self.wakes == 0:
            self.woke_before_messages = False
        _, ttl = payload
        if ttl > 0:
            self._emit(ctx, ttl - 1)

    def _emit(self, ctx, ttl):
        if ctx.degree == 0:
            return
        count = min(self._fanout, ctx.degree)
        ports = ctx.rng.sample(range(1, ctx.degree + 1), count)
        for p in ports:
            ctx.send(p, ("fuzz", ttl))


def build_world(seed: int, n: int, fanout: int, ttl: int, wake_count: int):
    graph = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    setup = make_setup(graph, knowledge=Knowledge.KT0, seed=seed)
    nodes = {v: FuzzNode(fanout, ttl) for v in graph.vertices()}
    rng = random.Random(seed + 1)
    awake = rng.sample(list(graph.vertices()), min(wake_count, n))
    adversary = Adversary(
        WakeSchedule.all_at_once(awake), UniformRandomDelay(seed=seed)
    )
    return setup, nodes, adversary


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 20),
    fanout=st.integers(1, 3),
    ttl=st.integers(0, 3),
    wake_count=st.integers(1, 3),
)
@settings(**FUZZ_SETTINGS)
def test_conservation_and_fifo(seed, n, fanout, ttl, wake_count):
    setup, nodes, adversary = build_world(seed, n, fanout, ttl, wake_count)
    trace = Trace()
    AsyncEngine(setup, nodes, adversary, seed=seed, trace=trace).run()

    sends = trace.sends()
    deliveries = trace.deliveries()
    # conservation: every send delivered exactly once
    assert sorted(m.seq for m in sends) == sorted(m.seq for m in deliveries)

    # FIFO per directed channel
    per_channel_sent = defaultdict(list)
    per_channel_recv = defaultdict(list)
    for ev in trace.events:
        if ev.kind == "send":
            per_channel_sent[(repr(ev.detail.src), repr(ev.detail.dst))].append(
                ev.detail.seq
            )
        elif ev.kind == "deliver":
            per_channel_recv[(repr(ev.detail.src), repr(ev.detail.dst))].append(
                ev.detail.seq
            )
    for chan, sent in per_channel_sent.items():
        assert per_channel_recv[chan] == sent


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 18),
    fanout=st.integers(1, 3),
    ttl=st.integers(0, 2),
)
@settings(**FUZZ_SETTINGS)
def test_causality_bounds(seed, n, fanout, ttl):
    setup, nodes, adversary = build_world(seed, n, fanout, ttl, 2)
    trace = Trace()
    AsyncEngine(setup, nodes, adversary, seed=seed, trace=trace).run()
    send_time = {}
    for ev in trace.events:
        if ev.kind == "send":
            send_time[ev.detail.seq] = ev.time
        elif ev.kind == "deliver":
            sent = send_time[ev.detail.seq]
            assert ev.time > sent  # strictly positive delay
            # delay <= tau (=1) plus FIFO-queueing epsilon slack
            assert ev.time <= sent + 1.0 + 1e-6


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 18),
    fanout=st.integers(1, 3),
    ttl=st.integers(1, 3),
)
@settings(**FUZZ_SETTINGS)
def test_wake_exactly_once_and_first(seed, n, fanout, ttl):
    setup, nodes, adversary = build_world(seed, n, fanout, ttl, 2)
    AsyncEngine(setup, nodes, adversary, seed=seed).run()
    for node in nodes.values():
        assert node.wakes <= 1
        assert node.woke_before_messages


@given(seed=st.integers(0, 5_000))
@settings(**FUZZ_SETTINGS)
def test_async_trace_determinism(seed):
    traces = []
    for _ in range(2):
        setup, nodes, adversary = build_world(seed, 12, 2, 2, 2)
        trace = Trace()
        AsyncEngine(setup, nodes, adversary, seed=seed, trace=trace).run()
        traces.append(
            [
                (round(e.time, 9), e.kind, repr(e.vertex))
                for e in trace.events
            ]
        )
    assert traces[0] == traces[1]


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 16),
    fanout=st.integers(1, 3),
    ttl=st.integers(0, 2),
)
@settings(**FUZZ_SETTINGS)
def test_sync_engine_same_invariants(seed, n, fanout, ttl):
    setup, _, _ = build_world(seed, n, fanout, ttl, 2)
    nodes = {v: FuzzNode(fanout, ttl) for v in setup.graph.vertices()}
    rng = random.Random(seed + 1)
    awake = rng.sample(list(setup.graph.vertices()), 2)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    trace = Trace()
    SyncEngine(setup, nodes, adversary, seed=seed, trace=trace).run()
    sends = trace.sends()
    deliveries = trace.deliveries()
    assert sorted(m.seq for m in sends) == sorted(m.seq for m in deliveries)
    for ev in trace.events:
        if ev.kind == "deliver":
            assert ev.time == ev.detail.sent_at + 1  # next round exactly
    for node in nodes.values():
        assert node.wakes <= 1
        assert node.woke_before_messages
