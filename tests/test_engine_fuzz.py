"""Engine fuzzing: random protocols vs engine invariants.

Hypothesis generates arbitrary little protocols (random fan-out, random
payload sizes, bounded TTL so executions terminate) and random
adversaries; the tests then check the invariants the engines must
uphold regardless of the protocol:

* conservation — every sent message is delivered exactly once;
* FIFO — per directed channel, delivery order equals send order;
* causality — a delivery never precedes its send, and never lags it by
  more than the normalized delay bound τ = 1 (plus FIFO queueing);
* wake-once — each node's on_wake fires exactly once, before any of
  its on_message callbacks;
* determinism — identical seeds give identical traces.
"""

from __future__ import annotations

import pickle
import random
from collections import defaultdict

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.parallel import CellSpec, cell_key
from repro.graphs.generators import complete_graph, connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    DelayStrategy,
    PerEdgeDelay,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.async_engine import AsyncEngine
from repro.sim.metrics import Metrics
from repro.sim.node import NodeAlgorithm
from repro.sim.runner import WakeUpResult
from repro.sim.sync_engine import SyncEngine
from repro.sim.trace import Trace

FUZZ_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class FuzzNode(NodeAlgorithm):
    """Random protocol: on wake/message, send to a random subset of
    ports with a TTL that strictly decreases, guaranteeing quiescence."""

    def __init__(self, fanout: int, ttl: int):
        self._fanout = fanout
        self._ttl = ttl
        self.wakes = 0
        self.deliveries = 0
        self.woke_before_messages = True

    def on_wake(self, ctx):
        self.wakes += 1
        if self.deliveries > 0:
            self.woke_before_messages = False
        self._emit(ctx, self._ttl)

    def on_message(self, ctx, port, payload):
        self.deliveries += 1
        if self.wakes == 0:
            self.woke_before_messages = False
        _, ttl = payload
        if ttl > 0:
            self._emit(ctx, ttl - 1)

    def _emit(self, ctx, ttl):
        if ctx.degree == 0:
            return
        count = min(self._fanout, ctx.degree)
        ports = ctx.rng.sample(range(1, ctx.degree + 1), count)
        for p in ports:
            ctx.send(p, ("fuzz", ttl))


def build_world(seed: int, n: int, fanout: int, ttl: int, wake_count: int):
    graph = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    setup = make_setup(graph, knowledge=Knowledge.KT0, seed=seed)
    nodes = {v: FuzzNode(fanout, ttl) for v in graph.vertices()}
    rng = random.Random(seed + 1)
    awake = rng.sample(list(graph.vertices()), min(wake_count, n))
    adversary = Adversary(
        WakeSchedule.all_at_once(awake), UniformRandomDelay(seed=seed)
    )
    return setup, nodes, adversary


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 20),
    fanout=st.integers(1, 3),
    ttl=st.integers(0, 3),
    wake_count=st.integers(1, 3),
)
@settings(**FUZZ_SETTINGS)
def test_conservation_and_fifo(seed, n, fanout, ttl, wake_count):
    setup, nodes, adversary = build_world(seed, n, fanout, ttl, wake_count)
    trace = Trace()
    AsyncEngine(setup, nodes, adversary, seed=seed, trace=trace).run()

    sends = trace.sends()
    deliveries = trace.deliveries()
    # conservation: every send delivered exactly once
    assert sorted(m.seq for m in sends) == sorted(m.seq for m in deliveries)

    # FIFO per directed channel
    per_channel_sent = defaultdict(list)
    per_channel_recv = defaultdict(list)
    for ev in trace.events:
        if ev.kind == "send":
            per_channel_sent[(repr(ev.detail.src), repr(ev.detail.dst))].append(
                ev.detail.seq
            )
        elif ev.kind == "deliver":
            per_channel_recv[(repr(ev.detail.src), repr(ev.detail.dst))].append(
                ev.detail.seq
            )
    for chan, sent in per_channel_sent.items():
        assert per_channel_recv[chan] == sent


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 18),
    fanout=st.integers(1, 3),
    ttl=st.integers(0, 2),
)
@settings(**FUZZ_SETTINGS)
def test_causality_bounds(seed, n, fanout, ttl):
    setup, nodes, adversary = build_world(seed, n, fanout, ttl, 2)
    trace = Trace()
    AsyncEngine(setup, nodes, adversary, seed=seed, trace=trace).run()
    send_time = {}
    for ev in trace.events:
        if ev.kind == "send":
            send_time[ev.detail.seq] = ev.time
        elif ev.kind == "deliver":
            sent = send_time[ev.detail.seq]
            assert ev.time > sent  # strictly positive delay
            # delay <= tau (=1), *exactly*: FIFO queueing may tie a
            # delivery with the bound but never push past it
            # (regression: the eps bump used to overshoot sent + 1).
            assert ev.time <= sent + 1.0


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 18),
    fanout=st.integers(1, 3),
    ttl=st.integers(1, 3),
)
@settings(**FUZZ_SETTINGS)
def test_wake_exactly_once_and_first(seed, n, fanout, ttl):
    setup, nodes, adversary = build_world(seed, n, fanout, ttl, 2)
    AsyncEngine(setup, nodes, adversary, seed=seed).run()
    for node in nodes.values():
        assert node.wakes <= 1
        assert node.woke_before_messages


@given(seed=st.integers(0, 5_000))
@settings(**FUZZ_SETTINGS)
def test_async_trace_determinism(seed):
    traces = []
    for _ in range(2):
        setup, nodes, adversary = build_world(seed, 12, 2, 2, 2)
        trace = Trace()
        AsyncEngine(setup, nodes, adversary, seed=seed, trace=trace).run()
        traces.append(
            [
                (round(e.time, 9), e.kind, repr(e.vertex))
                for e in trace.events
            ]
        )
    assert traces[0] == traces[1]


# ----------------------------------------------------------------------
# FIFO tie-breaking under adversary-equal raw delays (regression net for
# the _FIFO_EPS mechanism in async_engine._flush)
# ----------------------------------------------------------------------
class _DoubleSender(NodeAlgorithm):
    """On wake, fires two back-to-back messages down port 1."""

    def on_wake(self, ctx):
        ctx.send(1, ("first", 0))
        ctx.send(1, ("second", 1))

    def on_message(self, ctx, port, payload):
        pass


class _ConvergingDelay(DelayStrategy):
    """Later sends get smaller delays, so *raw* delivery times of
    successive messages on one channel coincide exactly — the hardest
    tie for FIFO enforcement."""

    def delay(self, src, dst, sent_at, seq):
        return max(0.05, 0.9 - 0.1 * seq)


@given(seed=st.integers(0, 2_000))
@settings(**FUZZ_SETTINGS)
def test_fifo_equal_raw_delays_deliver_in_send_order(seed):
    """Two messages on the same directed channel whose adversary delays
    are equal (here: PerEdgeDelay, a pure function of the edge) must be
    delivered in send order, at strictly increasing times."""
    g = complete_graph(2)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=seed)
    nodes = {0: _DoubleSender(), 1: FuzzNode(0, 0)}
    adversary = Adversary(
        WakeSchedule.singleton(0), PerEdgeDelay(seed=seed)
    )
    trace = Trace()
    AsyncEngine(setup, nodes, adversary, seed=seed, trace=trace).run()
    deliveries = trace.deliveries()
    assert [m.payload[0] for m in deliveries] == ["first", "second"]
    times = [e.time for e in trace.events if e.kind == "deliver"]
    assert times[0] < times[1]  # the eps bump separates the tie


def test_fifo_saturated_channel_stays_within_tau():
    """A burst of same-channel sends under UnitDelay saturates the
    channel at the tau = 1 bound: every raw delivery lands exactly at
    sent + 1, so the FIFO bump has no room.  Deliveries must then tie
    at the bound (send order kept by the seq tie-break) instead of
    creeping past it — the pre-clamp engine overshot to sent + 1 + eps
    and inflated time_complexity.
    """
    g = complete_graph(2)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=5)

    class _Burst(NodeAlgorithm):
        def on_wake(self, ctx):
            for i in range(5):
                ctx.send(1, ("b", i))

        def on_message(self, ctx, port, payload):
            pass

    nodes = {0: _Burst(), 1: FuzzNode(0, 0)}
    adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
    trace = Trace()
    AsyncEngine(setup, nodes, adversary, seed=5, trace=trace).run()
    send_time = {
        e.detail.seq: e.time for e in trace.events if e.kind == "send"
    }
    deliveries = [e for e in trace.events if e.kind == "deliver"]
    assert len(deliveries) == 5
    for ev in deliveries:
        assert ev.time <= send_time[ev.detail.seq] + 1.0
    # FIFO order survives the all-tied delivery times.
    assert [e.detail.payload[1] for e in deliveries] == list(range(5))


def test_fifo_raw_delay_inversion_still_delivers_in_send_order():
    """Even when the adversary's raw delays would *reorder* the channel
    (second message assigned the shorter delay), the engine's per-channel
    high-water mark must keep send order."""
    g = complete_graph(2)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=3)
    nodes = {0: _DoubleSender(), 1: FuzzNode(0, 0)}
    adversary = Adversary(WakeSchedule.singleton(0), _ConvergingDelay())
    trace = Trace()
    AsyncEngine(setup, nodes, adversary, seed=3, trace=trace).run()
    deliveries = trace.deliveries()
    assert [m.payload[0] for m in deliveries] == ["first", "second"]
    times = [e.time for e in trace.events if e.kind == "deliver"]
    assert times == sorted(times) and times[0] < times[1]


# ----------------------------------------------------------------------
# Lean-serialization properties (parallel executor transport + cache)
# ----------------------------------------------------------------------
@given(
    n=st.integers(1, 10_000),
    messages=st.integers(0, 10**9),
    bits=st.integers(0, 10**12),
    max_bits=st.integers(0, 10**6),
    time=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    t_awake=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    adv_max=st.integers(0, 10**6),
    adv_avg=st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
    awake_count=st.integers(0, 50),
    events=st.integers(0, 10**9),
)
@settings(**FUZZ_SETTINGS)
def test_lean_serialization_roundtrips_summary(
    n, messages, bits, max_bits, time, t_awake, adv_max, adv_avg,
    awake_count, events,
):
    metrics = Metrics(
        messages_total=messages,
        bits_total=bits,
        max_message_bits=max_bits,
        events_processed=events,
        first_wake=0.0 if awake_count else None,
        last_activity=time,
    )
    metrics.wake_time = {v: t_awake for v in range(awake_count)}
    result = WakeUpResult(
        algorithm="prop",
        engine="async",
        n=n,
        messages=messages,
        bits=bits,
        max_message_bits=max_bits,
        time=time,
        time_all_awake=t_awake,
        all_awake=awake_count > 0,
        asleep=frozenset(),
        wake_time=dict(metrics.wake_time),
        advice_max_bits=adv_max,
        advice_avg_bits=adv_avg,
        advice_total_bits=adv_max,
        metrics=metrics,
        trace=None,
    )
    # pickling through the lean path (what crosses the process boundary)
    lean = pickle.loads(pickle.dumps(result.lean()))
    assert lean.summary() == result.summary()
    assert lean.time_all_awake == result.time_all_awake
    assert lean.metrics.awake_count() == awake_count
    assert lean.trace is None and lean.wake_time == {}
    # JSON dict round trip (what lands in the on-disk cache)
    rebuilt = WakeUpResult.from_lean_dict(result.to_lean_dict())
    assert rebuilt.summary() == result.summary()
    assert rebuilt.time_all_awake == result.time_all_awake
    assert rebuilt.all_awake == result.all_awake
    assert rebuilt.metrics.events_processed == events


_SPEC_INPUTS = st.tuples(
    st.sampled_from(["flooding", "dfs-rank", "child-encoding"]),
    st.integers(8, 512),       # n
    st.integers(0, 5),         # trial
    st.integers(0, 1000),      # seed
    st.integers(0, 1000),      # delay seed
    st.integers(2, 8),         # workload avg_degree
    st.integers(0, 4),         # algo param k
)


def _spec_from(inputs) -> CellSpec:
    name, n, trial, seed, dseed, deg, k = inputs
    return CellSpec(
        algorithm=name,
        n=n,
        trial=trial,
        seed=seed,
        workload={"kind": "er_single_wake", "avg_degree": float(deg),
                  "seed": seed},
        delay={"kind": "uniform", "seed": dseed},
        algo_params={"k": k} if k else {},
    )


@given(a=_SPEC_INPUTS, b=_SPEC_INPUTS)
@settings(**FUZZ_SETTINGS)
def test_cache_keys_separate_all_inputs(a, b):
    """Cache keys collide exactly when every input matches: any differing
    seed, size, trial, adversary knob, or algorithm parameter must land
    in a different cache slot."""
    ka, kb = cell_key(_spec_from(a)), cell_key(_spec_from(b))
    assert (ka == kb) == (a == b)


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 16),
    fanout=st.integers(1, 3),
    ttl=st.integers(0, 2),
)
@settings(**FUZZ_SETTINGS)
def test_sync_engine_same_invariants(seed, n, fanout, ttl):
    setup, _, _ = build_world(seed, n, fanout, ttl, 2)
    nodes = {v: FuzzNode(fanout, ttl) for v in setup.graph.vertices()}
    rng = random.Random(seed + 1)
    awake = rng.sample(list(setup.graph.vertices()), 2)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    trace = Trace()
    SyncEngine(setup, nodes, adversary, seed=seed, trace=trace).run()
    sends = trace.sends()
    deliveries = trace.deliveries()
    assert sorted(m.seq for m in sends) == sorted(m.seq for m in deliveries)
    for ev in trace.events:
        if ev.kind == "deliver":
            assert ev.time == ev.detail.sent_at + 1  # next round exactly
    for node in nodes.values():
        assert node.wakes <= 1
        assert node.woke_before_messages
