"""Tests for the Graph data structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_vertices_only(self):
        g = Graph([1, 2, 3])
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_from_edges(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_edges_with_isolated(self):
        g = Graph.from_edges([(1, 2)], vertices=[9])
        assert g.has_vertex(9)
        assert g.degree(9) == 0

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.num_vertices == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_duplicate_edge_rejected(self):
        g = Graph.from_edges([(1, 2)])
        with pytest.raises(GraphError):
            g.add_edge(1, 2)
        with pytest.raises(GraphError):
            g.add_edge(2, 1)

    def test_add_edge_safe(self):
        g = Graph.from_edges([(1, 2)])
        assert g.add_edge_safe(1, 2) is False
        assert g.add_edge_safe(2, 3) is True
        assert g.num_edges == 2

    def test_add_edge_safe_rejects_self_loop(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge_safe(5, 5)

    def test_hashable_vertex_types(self):
        g = Graph()
        g.add_edge(("P", (0, 1)), ("L", (1, 0)))
        assert g.has_edge(("P", (0, 1)), ("L", (1, 0)))


class TestQueries:
    def test_neighbors_insertion_order(self):
        g = Graph.from_edges([(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0) == [3, 1, 2]

    def test_neighbors_returns_fresh_list(self):
        g = Graph.from_edges([(0, 1)])
        nbrs = g.neighbors(0)
        nbrs.append(99)
        assert g.neighbors(0) == [1]

    def test_unknown_vertex_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.neighbors(0)
        with pytest.raises(GraphError):
            g.degree(0)

    def test_degree(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_degree_extremes(self):
        g = Graph.from_edges([(0, 1), (0, 2)], vertices=[5])
        assert g.max_degree() == 2
        assert g.min_degree() == 0
        assert g.average_degree() == pytest.approx(2 * 2 / 4)

    def test_empty_degree_extremes(self):
        g = Graph()
        assert g.max_degree() == 0
        assert g.min_degree() == 0
        assert g.average_degree() == 0.0

    def test_edges_each_once(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        edges = list(g.edges())
        assert len(edges) == 3
        canon = {frozenset(e) for e in edges}
        assert canon == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({0, 2}),
        }

    def test_contains_len_iter(self):
        g = Graph([1, 2])
        assert 1 in g
        assert 3 not in g
        assert len(g) == 2
        assert sorted(g) == [1, 2]

    def test_has_edge_missing_vertices(self):
        g = Graph()
        assert g.has_edge(1, 2) is False


class TestRemoval:
    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1
        assert g.has_vertex(0)

    def test_remove_missing_edge_raises(self):
        g = Graph([0, 1])
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)


class TestDerived:
    def test_copy_independent(self):
        g = Graph.from_edges([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_subgraph(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        h = g.subgraph([0, 1, 2])
        assert h.num_vertices == 3
        assert h.num_edges == 2
        assert h.has_edge(0, 1) and h.has_edge(1, 2)
        assert not h.has_edge(2, 3)

    def test_subgraph_ignores_unknown(self):
        g = Graph.from_edges([(0, 1)])
        h = g.subgraph([0, 1, 99])
        assert h.num_vertices == 2

    def test_relabeled(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        h = g.relabeled({0: "a", 1: "b", 2: "c"})
        assert h.has_edge("a", "b")
        assert h.has_edge("b", "c")
        assert h.num_edges == 2

    def test_relabeled_requires_total_map(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            g.relabeled({0: "a"})

    def test_relabeled_requires_injective(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            g.relabeled({0: "a", 1: "a"})

    def test_equality(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        h = Graph.from_edges([(1, 2), (0, 1)])
        assert g == h
        h.add_edge(0, 2)
        assert g != h

    def test_equality_other_type(self):
        assert Graph() != 42


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=40,
    )
)
@settings(max_examples=60)
def test_handshake_lemma(edges):
    """Sum of degrees equals twice the number of edges, always."""
    g = Graph()
    for u, v in edges:
        g.add_edge_safe(u, v)
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=30,
    )
)
@settings(max_examples=60)
def test_adjacency_symmetry(edges):
    """u in N(v) iff v in N(u)."""
    g = Graph()
    for u, v in edges:
        g.add_edge_safe(u, v)
    for v in g.vertices():
        for u in g.neighbors(v):
            assert v in g.neighbors(u)
