"""Tests for the algorithm registry and the package-level quick_run."""

import pytest

import repro
from repro.core.base import WakeUpAlgorithm
from repro.core.registry import (
    TABLE1_ROWS,
    algorithm_names,
    get_algorithm,
    register,
)


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in algorithm_names():
            algo = get_algorithm(name)
            assert isinstance(algo, WakeUpAlgorithm)
            assert algo.name  # nonempty

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_algorithm("does-not-exist")

    def test_table1_rows_resolve(self):
        for row, name in TABLE1_ROWS.items():
            assert name in algorithm_names(), (row, name)

    def test_register_extension(self):
        class Custom(WakeUpAlgorithm):
            name = "custom-test-algo"

        register("custom-test-algo", Custom)
        try:
            assert isinstance(get_algorithm("custom-test-algo"), Custom)
        finally:
            from repro.core import registry

            registry._REGISTRY.pop("custom-test-algo", None)

    def test_fresh_instances(self):
        a = get_algorithm("dfs-rank")
        b = get_algorithm("dfs-rank")
        assert a is not b


class TestQuickRun:
    @pytest.mark.parametrize(
        "name",
        [
            "flooding",
            "dfs-rank",
            "fast-wakeup",
            "fip06-tree-advice",
            "child-encoding",
            "spanner-advice",
            "log-spanner-advice",
            "sqrt-threshold-advice",
        ],
    )
    def test_quick_run_each_algorithm(self, name):
        result = repro.quick_run(name, n=40, seed=3)
        assert result.all_awake
        assert result.n == 40

    def test_quick_run_is_deterministic(self):
        a = repro.quick_run("flooding", n=30, seed=5)
        b = repro.quick_run("flooding", n=30, seed=5)
        assert a.messages == b.messages
        assert a.time == b.time

    def test_version(self):
        assert repro.__version__
