"""Tests for the worst-case schedule search (repro.check.worstcase).

The acceptance bar: on a lower-bound topology the searched adversary
meets or beats the best UniformRandomDelay sample at the same size,
and the found schedule replays bit-identically through the plain
engine (satellite: worst schedule as a first-class artifact).
"""

import pytest

from repro.check.controller import ReplayController, ReplayDelay
from repro.check.worstcase import (
    GREEDY_POLICIES,
    random_baseline,
    worstcase_search,
)
from repro.core import get_algorithm
from repro.errors import SimulationError
from repro.graphs.generators import cycle_graph
from repro.lowerbounds.graph_g import build_class_g
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup
from repro.sim.trace import Trace


def _classg_world(n, algo="flooding"):
    def world():
        cg = build_class_g(n)
        setup = cg.make_setup(
            seed=1, bandwidth="LOCAL", knowledge=Knowledge.KT0
        )
        sched = WakeSchedule({v: 0.0 for v in cg.centers})
        return (
            setup,
            get_algorithm(algo),
            Adversary(sched, UnitDelay()),
        )

    return world


def _cycle_world(n):
    def world():
        setup = make_setup(
            cycle_graph(n), knowledge=Knowledge.KT0, bandwidth="LOCAL",
            seed=1,
        )
        return (
            setup,
            get_algorithm("flooding"),
            Adversary(WakeSchedule({0: 0.0}), UnitDelay()),
        )

    return world


class TestSearch:
    def test_beats_random_baseline_on_classg(self):
        world = _classg_world(6)
        wc = worstcase_search(world, "time", beam_width=3, horizon=8,
                              branch_cap=2)
        baseline = random_baseline(world, "time", trials=24, seed=5)
        assert wc.score >= baseline

    def test_beats_random_baseline_on_cycle(self):
        world = _cycle_world(8)
        wc = worstcase_search(world, "time")
        baseline = random_baseline(world, "time", trials=24, seed=5)
        assert wc.score >= baseline
        # A lazy adversary on a cycle approaches one tau per hop:
        # time close to the n/2 eccentricity, far beyond random delays.
        assert wc.score > 0.9 * 4

    def test_greedy_scores_reported_for_all_policies(self):
        wc = worstcase_search(_cycle_world(6), "time", beam_width=0)
        assert set(wc.greedy_scores) == set(GREEDY_POLICIES)
        assert wc.score == max(wc.greedy_scores.values())

    def test_messages_objective_uses_eager_times(self):
        wc = worstcase_search(_classg_world(4), "messages",
                              beam_width=2, horizon=4)
        assert wc.laziness == 0.0
        assert wc.score == wc.result.messages

    def test_unknown_objective_rejected(self):
        with pytest.raises(SimulationError, match="objective"):
            worstcase_search(_cycle_world(4), "latency")


class TestWorstScheduleReplay:
    """Satellite: the worst schedule is a replayable artifact."""

    @pytest.mark.parametrize("objective", ["time", "messages"])
    def test_plain_engine_replay_is_bit_identical(self, objective):
        world = _classg_world(6)
        wc = worstcase_search(world, objective, beam_width=3,
                              horizon=6, branch_cap=2)

        setup, algo, adv = world()
        trace = Trace()
        replayed = run_wakeup(
            setup, algo,
            Adversary(adv.schedule, ReplayDelay(wc.delays)),
            engine="async", seed=0, require_all_awake=False,
            trace=trace,
        )
        assert replayed.messages == wc.result.messages
        assert replayed.bits == wc.result.bits
        assert replayed.time == wc.result.time
        assert (
            replayed.metrics.events_processed
            == wc.result.metrics.events_processed
        )

    def test_strict_choice_replay_reproduces_score(self):
        world = _cycle_world(8)
        wc = worstcase_search(world, "time")
        setup, algo, adv = world()
        ctl = ReplayController(
            list(wc.choices), strict=True, laziness=wc.laziness
        )
        replayed = run_wakeup(
            setup, algo, adv, engine="async", seed=0,
            require_all_awake=False, controller=ctl,
        )
        assert replayed.time == wc.score


class TestTelemetry:
    def test_worstcase_stats_event(self):
        events = []

        class Capture:
            enabled = True

            def emit(self, kind, **fields):
                events.append((kind, fields))

        wc = worstcase_search(
            _cycle_world(6), "time", beam_width=2, horizon=4,
            recorder=Capture(),
        )
        assert [k for k, _ in events] == ["worstcase_stats"]
        _, fields = events[0]
        assert fields["best_score"] == wc.score
        assert fields["evaluations"] == wc.evaluations
        assert fields["objective"] == "time"
