"""Tests for the Theorem-4 FastWakeUp algorithm."""

import math

import pytest

from repro.core.fast_wakeup import ACTIVATE, BFS1, FastWakeUp
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def run_fast(graph, awake, seed=0, sample_override=None, trace=False):
    setup = make_setup(graph, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    return run_wakeup(
        setup,
        FastWakeUp(sample_override=sample_override),
        adversary,
        engine="sync",
        seed=seed + 1,
        record_trace=trace,
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory,awake",
        [
            (lambda: path_graph(20), [0]),
            (lambda: grid_graph(7, 7), [24]),
            (lambda: star_graph(15), [3]),
            (lambda: complete_graph(25), [0]),
            (lambda: connected_erdos_renyi(60, 0.08, seed=1), [0, 30]),
        ],
    )
    def test_wakes_everyone(self, graph_factory, awake):
        g = graph_factory()
        r = run_fast(g, awake)
        assert r.all_awake

    @pytest.mark.parametrize("seed", range(4))
    def test_wakes_everyone_random(self, seed):
        g = connected_erdos_renyi(50, 0.1, seed=seed)
        import random

        awake = random.Random(seed).sample(list(g.vertices()), 6)
        r = run_fast(g, awake, seed=seed)
        assert r.all_awake

    def test_all_roots_still_correct(self):
        """sample_override=1.0: everyone who activates becomes a root."""
        g = grid_graph(6, 6)
        r = run_fast(g, [0], sample_override=1.0)
        assert r.all_awake

    def test_no_roots_still_correct(self):
        """sample_override=0.0: pure 10-round activate! relay."""
        g = grid_graph(6, 6)
        r = run_fast(g, [0], sample_override=0.0)
        assert r.all_awake


class TestTimeBound:
    @pytest.mark.parametrize(
        "graph_factory,awake",
        [
            (lambda: path_graph(30), [0]),
            (lambda: grid_graph(8, 8), [0]),
            (lambda: connected_erdos_renyi(80, 0.06, seed=2), [5]),
        ],
    )
    def test_ten_rho_rounds(self, graph_factory, awake):
        """Theorem 4: all nodes wake within 10 * rho_awk rounds (we
        allow one extra wave of slack for the final broadcast hop)."""
        g = graph_factory()
        rho = awake_distance(g, awake)
        r = run_fast(g, awake)
        assert r.time_all_awake <= 10 * rho + 10

    def test_rho_one_constant_rounds(self):
        """Dominating awake set: wake-up completes in O(1) rounds."""
        g = complete_graph(30)
        r = run_fast(g, list(g.vertices())[:10])
        assert r.time_all_awake <= 11

    def test_late_adversary_wakeups_cause_no_failure(self):
        g = grid_graph(6, 6)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=4)
        schedule = WakeSchedule.staggered(
            [(0.0, [0]), (7.0, [35]), (23.0, [17])]
        )
        r = run_wakeup(
            setup, FastWakeUp(), Adversary(schedule, UnitDelay()),
            engine="sync", seed=5,
        )
        assert r.all_awake


class TestMessageBound:
    def test_subquadratic_on_dense_all_awake(self):
        """All awake on K_n: naive broadcast costs n(n-1); FastWakeUp
        must be well below (the Lemma 13 capture mechanism)."""
        n = 60
        g = complete_graph(n)
        r = run_fast(g, list(g.vertices()))
        naive = n * (n - 1)
        assert r.messages < naive

    def test_message_shape_n_to_three_halves(self):
        for n in (60, 120):
            g = connected_erdos_renyi(n, 8.0 / n, seed=n)
            r = run_fast(g, list(g.vertices()), seed=1)
            bound = 25 * n**1.5 * math.sqrt(math.log(n))
            assert r.messages <= bound

    def test_roots_suppress_activate_broadcasts(self):
        """With sampling forced on, nearly every node is captured by a
        tree and activate! traffic should (almost) vanish."""
        g = complete_graph(40)
        r_all = run_fast(g, list(g.vertices()), sample_override=1.0, trace=True)
        activates = [
            m for m in r_all.trace.sends() if m.payload == (ACTIVATE,)
        ]
        assert len(activates) == 0

    def test_no_sampling_means_pure_broadcast(self):
        g = complete_graph(20)
        r = run_fast(g, list(g.vertices()), sample_override=0.0, trace=True)
        activates = [
            m for m in r.trace.sends() if m.payload == (ACTIVATE,)
        ]
        assert len(activates) == 20 * 19


class TestProtocolDetails:
    def test_bfs_construction_stays_on_tree_edges(self):
        """bfs1 goes root->neighbors only: count matches root degrees."""
        g = grid_graph(5, 5)
        r = run_fast(g, [12], sample_override=1.0, trace=True)
        bfs1 = [m for m in r.trace.sends() if m.payload[0] == BFS1]
        # only vertex 12 is initially active, so the first root wave is
        # exactly its degree
        first_round = [m for m in bfs1 if m.sent_at == 0.0]
        assert len(first_round) == g.degree(12)

    def test_deterministic(self):
        g = connected_erdos_renyi(40, 0.12, seed=6)
        r1 = run_fast(g, [0, 20], seed=9)
        r2 = run_fast(g, [0, 20], seed=9)
        assert (r1.messages, r1.time) == (r2.messages, r2.time)


class TestLemmas9To11:
    """Direct empirical checks of the Sec-3.2 supporting lemmas."""

    def _run_with_nodes(self, g, awake, seed=0):
        from repro.core.fast_wakeup import FastWakeUp
        from repro.sim.sync_engine import SyncEngine

        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=seed)
        algo = FastWakeUp()
        nodes = algo.build_nodes(setup)
        adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
        eng = SyncEngine(setup, nodes, adversary, seed=seed + 1)
        metrics = eng.run()
        return setup, nodes, metrics

    def test_lemma9_neighbors_awake_at_deactivation(self):
        """Lemma 9: when a node deactivates in round r, every neighbor
        is awake at the start of round r."""
        for seed in range(3):
            g = connected_erdos_renyi(50, 0.12, seed=20 + seed)
            setup, nodes, metrics = self._run_with_nodes(g, [0, 25], seed=seed)
            for v, node in nodes.items():
                if node.deactivated_at_local is None:
                    continue
                global_round = (
                    metrics.wake_time[v] + node.deactivated_at_local
                )
                for u in g.neighbors(v):
                    assert metrics.wake_time[u] <= global_round, (v, u)

    def test_lemma11_deactivation_within_eleven_rounds(self):
        """Lemma 11: a node woken in round r deactivates by r + 10
        (broadcasters stop after round 10 as well)."""
        for seed in range(3):
            g = connected_erdos_renyi(40, 0.15, seed=30 + seed)
            setup, nodes, metrics = self._run_with_nodes(g, [0], seed=seed)
            for v, node in nodes.items():
                if node.deactivated_at_local is not None:
                    assert node.deactivated_at_local <= 10
                else:
                    # never formally deactivated => it must have run its
                    # broadcast (round 10) and stopped
                    assert node.broadcast_done or not node.active

    def test_lemma10_roots_finish_in_nine_rounds(self):
        """Lemma 10: a root's construction completes 9 rounds after its
        sampling step (deactivation deadline fires at local round 9)."""
        from repro.core.fast_wakeup import FastWakeUp
        from repro.sim.sync_engine import SyncEngine

        g = grid_graph(5, 5)
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=7)
        algo = FastWakeUp(sample_override=1.0)  # every active node roots
        nodes = algo.build_nodes(setup)
        adversary = Adversary(WakeSchedule.singleton(12), UnitDelay())
        SyncEngine(setup, nodes, adversary, seed=1).run()
        root_node = nodes[12]
        assert root_node.is_root
        assert root_node.deactivated_at_local == 9
