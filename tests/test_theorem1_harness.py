"""Tests for the Theorem-1 empirical harness."""

import math

import pytest

from repro.analysis.information import mutual_information
from repro.lowerbounds.theorem1 import (
    advice_port_samples,
    run_prefix_tradeoff,
    small_port_usage_fraction,
    theorem1_message_bound,
)


class TestBoundFormula:
    def test_formula(self):
        assert theorem1_message_bound(64, 0) == pytest.approx(
            64**2 / (16 * 6)
        )

    def test_monotone_decreasing_in_beta(self):
        vals = [theorem1_message_bound(128, b) for b in range(7)]
        assert vals == sorted(vals, reverse=True)


class TestTradeoffFrontier:
    @pytest.fixture(scope="class")
    def points(self):
        return run_prefix_tradeoff(
            n=24, betas=[0, 1, 2, 3, 4], trials=2, seed=1
        )

    def test_messages_monotone_in_beta(self, points):
        msgs = [p.messages for p in points]
        assert msgs == sorted(msgs, reverse=True)

    def test_advice_monotone_in_beta(self, points):
        adv = [p.advice_avg_bits for p in points]
        assert adv == sorted(adv)

    def test_product_roughly_constant(self, points):
        """messages * 2^beta stays within a small factor of n^2 — the
        executable statement of the Theorem-1 frontier.  (The +n
        broadcaster overhead inflates large-beta points slightly.)"""
        products = [p.product - p.n * 2**p.beta for p in points]
        base = products[0]
        for prod in products:
            assert prod >= base / 4
            assert prod <= base * 4

    def test_all_points_beat_nothing_below_bound_with_tiny_advice(self, points):
        """No point has both messages below the Theorem-1 threshold AND
        advice below Omega(beta) — the lower bound is never violated."""
        for p in points:
            if p.messages <= theorem1_message_bound(p.n, p.beta):
                # Theorem 1: average advice must be Omega(beta); our
                # constant is 1/6 * (beta - 2 - o(1)).
                assert p.advice_avg_bits >= (p.beta - 2) / 6


class TestPortUsage:
    def test_large_beta_means_few_ports(self):
        # beta must stay <= log2 n for the Sml threshold n/2^beta to be
        # meaningful (the same restriction Theorem 1 itself imposes).
        frac_small = small_port_usage_fraction(64, beta=4, seed=0)
        # every center except the designated broadcaster is small
        assert frac_small >= 1.0 - 2 / 64

    def test_zero_beta_means_many_ports(self):
        frac_small = small_port_usage_fraction(24, beta=0, seed=0)
        # With beta=0 every center probes all deg = n + 1 ports, which
        # exceeds the Sml threshold of n / 2^0 = n: no center is small.
        assert frac_small == 0.0

    def test_intermediate_beta_partial(self):
        # beta=1: centers probe about half their ports (threshold n/2);
        # roughly half the centers land under the threshold.
        frac = small_port_usage_fraction(24, beta=1, seed=0)
        assert 0.2 <= frac <= 0.9

    def test_fraction_monotone_in_beta(self):
        fracs = [
            small_port_usage_fraction(24, beta=b, seed=0) for b in (1, 2, 3)
        ]
        assert fracs == sorted(fracs)


class TestInformationAccounting:
    def test_advice_carries_about_beta_bits(self):
        """I[X_i : advice_i] grows with beta and is <= beta + O(1):
        the executable version of the Lemma-3 entropy argument."""
        mis = []
        for beta in (0, 2, 4):
            pairs = advice_port_samples(
                n=16, beta=beta, samples=400, seed=beta
            )
            mis.append(mutual_information(pairs))
        assert mis[0] == pytest.approx(0.0, abs=0.05)
        assert mis[1] > 1.0  # ~2 bits minus estimation bias
        assert mis[2] > mis[1]
        for beta, mi in zip((0, 2, 4), mis):
            assert mi <= beta + 0.6

    def test_port_marginal_is_near_uniform(self):
        from repro.analysis.information import entropy

        pairs = advice_port_samples(n=16, beta=0, samples=600, seed=9)
        xs = [x for x, _ in pairs]
        # H[X_i] should approach log2(deg) = log2(17).
        assert entropy(xs) > 0.9 * math.log2(17)
