"""Tests for the perf ledger (`repro.analysis.perf`) and its CLIs.

The guarantees under test:

* **envelopes** — schema-1 (legacy) and schema-2 bench payloads both
  load; schema-2 declares its profile, schema-1 falls back to field
  inference (ambiguous between ``engine`` and ``bulk``, which must be
  passed explicitly); mismatched declarations are errors;
* **ledger** — ``record`` appends one entry per bench ingest,
  ``latest_per_profile`` returns append-order winners, and the file
  stays valid JSONL;
* **gate** — ``check`` compares candidates against the latest ledger
  entry of their profile: within-tolerance and faster-than-ledger
  runs pass, a >30% drop fails, asymmetric cases are notes, and a
  profile without history seeds the ledger from the candidate and
  reports "seeded, no baseline" instead of erroring;
* **committed state** — the repository's ``PERF_LEDGER.jsonl`` is
  seeded for all four profiles and the committed ``BENCH_*.json``
  files pass the unified gate against it (the acceptance criterion
  CI re-checks).
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.perf import (
    BENCH_SCHEMAS,
    PROFILES,
    PerfError,
    bench_to_entry,
    case_key,
    check,
    geomean,
    infer_profile,
    latest_per_profile,
    load_bench,
    read_ledger,
    record,
    show,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
LEDGER_SCRIPT = REPO_ROOT / "scripts" / "perf_ledger.py"


def engine_payload(schema=2, rate=50_000.0, profile="engine"):
    cases = [
        {
            "algorithm": "flooding", "engine": eng, "n": n,
            "events": 1000, "messages": 900, "wall_s": 0.02,
            "events_per_sec": rate,
        }
        for eng in ("async", "sync")
        for n in (512, 2048)
    ]
    payload = {
        "schema": schema,
        "created": "2026-08-08T00:00:00",
        "python": "3.12.0",
        "cases": cases,
    }
    if schema >= 2:
        payload["profile"] = profile
    return payload


def topology_payload(schema=1, speedup=40.0):
    payload = {
        "schema": schema,
        "created": "2026-08-08T00:00:00",
        "python": "3.12.0",
        "cases": [
            {
                "workload": "er_spanner", "n": 512, "trials": 3,
                "legacy_s": 1.0, "cold_s": 0.5, "warm_s": 0.01,
                "warm_speedup": speedup,
            }
        ],
    }
    if schema >= 2:
        payload["profile"] = "topology"
    return payload


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload) + "\n")
    return path


class TestEnvelopes:
    def test_schema2_declares_profile(self, tmp_path):
        path = write(tmp_path, "b.json", engine_payload())
        profile, payload = load_bench(path)
        assert profile == "engine"
        assert payload["schema"] == 2

    def test_schema1_engine_is_ambiguous(self, tmp_path):
        payload = engine_payload(schema=1)
        assert infer_profile(payload) is None  # engine vs bulk
        path = write(tmp_path, "b.json", payload)
        with pytest.raises(PerfError, match="cannot infer"):
            load_bench(path)
        profile, _ = load_bench(path, "bulk")  # explicit wins
        assert profile == "bulk"

    def test_schema1_topology_is_inferable(self, tmp_path):
        path = write(tmp_path, "t.json", topology_payload(schema=1))
        profile, _ = load_bench(path)
        assert profile == "topology"

    def test_declared_profile_mismatch_is_error(self, tmp_path):
        path = write(tmp_path, "b.json", engine_payload())
        with pytest.raises(PerfError, match="declares profile"):
            load_bench(path, "check")

    def test_unknown_schema_rejected(self, tmp_path):
        payload = engine_payload()
        payload["schema"] = 99
        path = write(tmp_path, "b.json", payload)
        with pytest.raises(PerfError, match="unsupported bench schema"):
            load_bench(path)
        assert 99 not in BENCH_SCHEMAS

    def test_missing_case_fields_rejected(self, tmp_path):
        payload = engine_payload()
        del payload["cases"][0]["events_per_sec"]
        path = write(tmp_path, "b.json", payload)
        with pytest.raises(PerfError, match="missing fields"):
            load_bench(path)

    def test_non_positive_metric_rejected(self, tmp_path):
        path = write(tmp_path, "b.json", engine_payload(rate=0.0))
        with pytest.raises(PerfError, match="non-positive"):
            load_bench(path)

    def test_case_key_joins_key_fields(self):
        case = engine_payload()["cases"][0]
        assert case_key(case, "engine") == "flooding/async/512"
        topo = topology_payload()["cases"][0]
        assert case_key(topo, "topology") == "er_spanner/512"


class TestLedger:
    def test_record_appends_entries(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        bench = write(tmp_path, "b.json", engine_payload())
        entry = record(bench, ledger)
        assert entry["profile"] == "engine"
        assert entry["metric"] == "events_per_sec"
        assert len(entry["cases"]) == 4
        record(
            write(tmp_path, "t.json", topology_payload(schema=2)),
            ledger,
        )
        entries = read_ledger(ledger)
        assert [e["profile"] for e in entries] == ["engine", "topology"]
        assert all("recorded" in e for e in entries)

    def test_latest_per_profile_keeps_append_order_winner(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        record(write(tmp_path, "a.json", engine_payload(rate=100.0)),
               ledger)
        record(write(tmp_path, "b.json", engine_payload(rate=200.0)),
               ledger)
        latest = latest_per_profile(read_ledger(ledger))
        assert set(latest) == {"engine"}
        assert set(latest["engine"]["cases"].values()) == {200.0}

    def test_missing_ledger_is_empty(self, tmp_path):
        assert read_ledger(tmp_path / "nope.jsonl") == []

    def test_malformed_ledger_line_is_error(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        ledger.write_text("{not json}\n")
        with pytest.raises(PerfError, match="bad ledger line"):
            read_ledger(ledger)

    def test_show_prints_history_with_geomean(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        record(write(tmp_path, "a.json", engine_payload(rate=100.0)),
               ledger)
        record(write(tmp_path, "b.json", engine_payload(rate=200.0)),
               ledger)
        buf = io.StringIO()
        grouped = show(ledger, stream=buf)
        out = buf.getvalue()
        assert "[engine] 2 entries" in out
        assert "+100.0%" in out  # geomean delta between the entries
        assert len(grouped["engine"]) == 2
        assert geomean([100.0, 400.0]) == pytest.approx(200.0)

    def test_bench_to_entry_carries_source_metadata(self):
        entry = bench_to_entry("engine", engine_payload(), source="x.json")
        assert entry["source"] == "x.json"
        assert entry["unit"] == "events/s"
        assert entry["created"] == "2026-08-08T00:00:00"


class TestGate:
    def _seeded(self, tmp_path, rate=100.0):
        ledger = tmp_path / "ledger.jsonl"
        record(write(tmp_path, "seed.json", engine_payload(rate=rate)),
               ledger)
        return ledger

    def test_within_tolerance_passes(self, tmp_path):
        ledger = self._seeded(tmp_path)
        cand = write(tmp_path, "cand.json", engine_payload(rate=80.0))
        assert check({"engine": cand}, ledger, stream=io.StringIO()) == []

    def test_faster_never_fails(self, tmp_path):
        ledger = self._seeded(tmp_path)
        cand = write(tmp_path, "cand.json", engine_payload(rate=900.0))
        assert check({"engine": cand}, ledger, stream=io.StringIO()) == []

    def test_regression_fails(self, tmp_path):
        ledger = self._seeded(tmp_path)
        cand = write(tmp_path, "cand.json", engine_payload(rate=50.0))
        errors = check({"engine": cand}, ledger, stream=io.StringIO())
        assert len(errors) == 4  # every case dropped to 0.5x
        assert all("REGRESSION" not in e and "below ledger" in e
                   for e in errors)

    def test_tighter_tolerance_is_respected(self, tmp_path):
        ledger = self._seeded(tmp_path)
        cand = write(tmp_path, "cand.json", engine_payload(rate=90.0))
        assert check({"engine": cand}, ledger,
                     max_regression=0.05, stream=io.StringIO())

    def test_unseeded_profile_seeds_instead_of_failing(self, tmp_path):
        # Regression: an unseeded profile used to hard-error, so the
        # first bench of any new profile could never pass CI.  Now the
        # candidate seeds the ledger and the gate reports it.
        ledger = self._seeded(tmp_path)
        cand = write(tmp_path, "t.json", topology_payload(schema=2))
        buf = io.StringIO()
        errors = check({"topology": cand}, ledger, stream=buf)
        assert errors == []
        assert "seeded, no baseline" in buf.getvalue()
        assert "topology" in latest_per_profile(read_ledger(ledger))

    def test_seeded_entry_gates_the_next_check(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        first = write(tmp_path, "first.json", engine_payload(rate=100.0))
        assert check({"engine": first}, ledger,
                     stream=io.StringIO()) == []
        slow = write(tmp_path, "slow.json", engine_payload(rate=50.0))
        errors = check({"engine": slow}, ledger, stream=io.StringIO())
        assert errors and all("below ledger" in e for e in errors)

    def test_empty_ledger_file_seeds_too(self, tmp_path):
        ledger = tmp_path / "fresh.jsonl"  # does not exist yet
        cand = write(tmp_path, "cand.json", engine_payload(rate=100.0))
        buf = io.StringIO()
        assert check({"engine": cand}, ledger, stream=buf) == []
        assert "seeded, no baseline" in buf.getvalue()
        assert ledger.exists()

    def test_asymmetric_cases_are_notes_not_errors(self, tmp_path):
        ledger = self._seeded(tmp_path)
        payload = engine_payload(rate=100.0)
        payload["cases"] = payload["cases"][:2]
        cand = write(tmp_path, "cand.json", payload)
        buf = io.StringIO()
        assert check({"engine": cand}, ledger, stream=buf) == []
        assert "only in ledger" in buf.getvalue()

    def test_unknown_profile_is_error(self, tmp_path):
        ledger = self._seeded(tmp_path)
        cand = write(tmp_path, "cand.json", engine_payload())
        errors = check({"warp": cand}, ledger, stream=io.StringIO())
        assert any("unknown profile" in e for e in errors)


class TestCommittedState:
    """The repository's own ledger and BENCH files stay consistent."""

    def test_ledger_is_seeded_for_all_profiles(self):
        entries = read_ledger(REPO_ROOT / "PERF_LEDGER.jsonl")
        assert set(latest_per_profile(entries)) == set(PROFILES)

    def test_committed_benches_pass_the_unified_gate(self):
        candidates = {
            name: REPO_ROOT / prof["baseline"]
            for name, prof in PROFILES.items()
        }
        errors = check(
            candidates,
            REPO_ROOT / "PERF_LEDGER.jsonl",
            stream=io.StringIO(),
        )
        assert errors == []

    def test_committed_benches_use_the_v2_envelope(self):
        for name, prof in PROFILES.items():
            payload = json.loads(
                (REPO_ROOT / prof["baseline"]).read_text()
            )
            assert payload["schema"] == 2
            assert payload["profile"] == name
            for key in ("created", "python", "cases"):
                assert key in payload


class TestLedgerScript:
    """scripts/perf_ledger.py and `repro perf` front the same module."""

    def _run(self, *argv, cwd=None):
        return subprocess.run(
            [sys.executable, str(LEDGER_SCRIPT), *argv],
            capture_output=True, text=True, cwd=cwd,
        )

    def test_record_show_check_round_trip(self, tmp_path):
        bench = write(tmp_path, "b.json", engine_payload())
        ledger = tmp_path / "ledger.jsonl"
        res = self._run("--ledger", str(ledger), "record", str(bench))
        assert res.returncode == 0, res.stderr
        assert "recorded [engine]" in res.stdout
        res = self._run("--ledger", str(ledger), "show")
        assert res.returncode == 0
        assert "[engine]" in res.stdout
        res = self._run(
            "--ledger", str(ledger), "check",
            "--candidate", f"engine={bench}",
        )
        assert res.returncode == 0, res.stderr
        assert "within tolerance" in res.stdout

    def test_check_fails_on_regression(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        fast = write(tmp_path, "fast.json", engine_payload(rate=100.0))
        slow = write(tmp_path, "slow.json", engine_payload(rate=10.0))
        assert self._run(
            "--ledger", str(ledger), "record", str(fast)
        ).returncode == 0
        res = self._run(
            "--ledger", str(ledger), "check",
            "--candidate", f"engine={slow}",
        )
        assert res.returncode == 1
        assert "below ledger" in res.stderr

    def test_repro_perf_cli_matches(self, tmp_path):
        bench = write(tmp_path, "b.json", engine_payload())
        ledger = tmp_path / "ledger.jsonl"
        env_path = str(REPO_ROOT / "src")
        res = subprocess.run(
            [sys.executable, "-m", "repro", "perf",
             "--ledger", str(ledger), "record", str(bench)],
            capture_output=True, text=True,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )
        assert res.returncode == 0, res.stderr
        assert "recorded [engine]" in res.stdout
        res = subprocess.run(
            [sys.executable, "-m", "repro", "perf",
             "--ledger", str(ledger), "check",
             "--candidate", f"engine={bench}"],
            capture_output=True, text=True,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )
        assert res.returncode == 0, res.stderr
        assert "within tolerance" in res.stdout
