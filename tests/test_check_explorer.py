"""Tests for the bounded schedule-space explorer and the shrinker.

Covers the exhaustive sweeps CI relies on (zero violations on the
shipped algorithms at tiny n), the soundness of the two reductions
(POR on/off reach the same outcomes), the random-run containment
property, and the full mutation pipeline: plant a known bug, find the
violation exhaustively, shrink it, replay it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.controller import MUTATION_SKIP_FIFO, ReplayController
from repro.check.explorer import explore, random_probe
from repro.check.invariants import (
    CLAIMED_MESSAGE_BOUNDS,
    InvariantContext,
    default_invariants,
)
from repro.check.shrink import shrink_violation
from repro.core import get_algorithm
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup
from repro.sim.trace import Trace


def _world(graph_fn, n, algo, wakes, knowledge=Knowledge.KT0):
    def world():
        setup = make_setup(
            graph_fn(n), knowledge=knowledge, bandwidth="LOCAL", seed=1
        )
        return (
            setup,
            get_algorithm(algo),
            Adversary(WakeSchedule(dict(wakes)), UnitDelay()),
        )

    return world


class TestExhaustive:
    @pytest.mark.parametrize(
        "graph_fn,n,algo,wakes,knowledge",
        [
            (cycle_graph, 3, "flooding", {0: 0.0}, Knowledge.KT0),
            (cycle_graph, 4, "flooding", {0: 0.0}, Knowledge.KT0),
            (cycle_graph, 4, "flooding", {0: 0.0, 2: 0.3}, Knowledge.KT0),
            (star_graph, 4, "flooding", {1: 0.0}, Knowledge.KT0),
            (path_graph, 4, "echo-flooding", {0: 0.0}, Knowledge.KT0),
            (complete_graph, 3, "dfs-rank", {0: 0.0}, Knowledge.KT1),
        ],
    )
    def test_no_violations_at_tiny_n(self, graph_fn, n, algo, wakes,
                                     knowledge):
        result = explore(_world(graph_fn, n, algo, wakes, knowledge))
        assert result.completed
        assert result.stats.violations == 0
        assert result.stats.schedules >= 1

    def test_every_schedule_checked_against_claimed_bounds(self):
        # Guard: the workloads above actually exercise the bound
        # invariants (the registry names must still resolve).
        for name in CLAIMED_MESSAGE_BOUNDS:
            assert get_algorithm(name).name == name

    def test_budget_exhaustion_reported(self):
        world = _world(complete_graph, 4, "flooding", {0: 0.0})
        result = explore(world, max_schedules=3)
        assert not result.completed
        assert result.stats.schedules <= 3


class TestReductionSoundness:
    @pytest.mark.parametrize(
        "graph_fn,n,algo,wakes",
        [
            (cycle_graph, 4, "flooding", {0: 0.0}),
            (cycle_graph, 4, "flooding", {0: 0.0, 2: 0.3}),
            (path_graph, 4, "echo-flooding", {0: 0.0}),
        ],
    )
    def test_por_preserves_reachable_outcomes(self, graph_fn, n, algo,
                                              wakes):
        world = _world(graph_fn, n, algo, wakes)
        with_por = explore(world, por=True)
        without = explore(world, por=False)
        assert with_por.outcomes == without.outcomes
        assert with_por.states <= without.states
        assert with_por.stats.violations == without.stats.violations == 0
        # The reduction must actually reduce something on these shapes.
        assert with_por.stats.schedules < without.stats.schedules

    def test_dedup_only_prunes_revisits(self):
        world = _world(cycle_graph, 4, "flooding", {0: 0.0})
        deduped = explore(world, dedup=True)
        full = explore(world, dedup=False, por=False)
        assert deduped.outcomes <= full.outcomes


class TestContainment:
    """Satellite: random interleavings stay inside the exhaustive set."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        laziness=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
    )
    def test_random_runs_contained_in_exhaustive_set(self, seed,
                                                     laziness):
        world = _world(cycle_graph, 4, "flooding", {0: 0.0, 2: 0.3})
        reference = _exhaustive_reference(world)
        visited, outcome = random_probe(world, seed=seed,
                                        laziness=laziness)
        assert outcome in reference.outcomes
        assert visited <= reference.states


_REFERENCE_CACHE = {}


def _exhaustive_reference(world):
    # POR off: the containment property is against the *full* reachable
    # set, not the reduced one.  Cached — hypothesis calls this per
    # example and the workload is fixed.
    key = "cycle4-2wakes"
    if key not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[key] = explore(world, por=False)
    return _REFERENCE_CACHE[key]


class TestMutationPipeline:
    """Satellite: plant a bug, find it, shrink it, replay it."""

    def test_skip_fifo_found_and_shrunk(self):
        world = _world(path_graph, 4, "echo-flooding", {0: 0.0})
        found = explore(world, mutation=MUTATION_SKIP_FIFO,
                        max_schedules=5_000)
        assert found.stats.violations > 0
        v = next(
            fv for fv in found.violations
            if fv.invariant == "fifo-per-channel"
        )

        outcome = shrink_violation(
            world,
            v.choices,
            v.invariant,
            invariants=default_invariants("echo-flooding"),
            mutation=MUTATION_SKIP_FIFO,
        )
        assert outcome.final_length <= len(v.choices)
        assert outcome.final_length <= 3  # tiny witness on this shape
        assert outcome.reduction >= 0.0

        # The shrunk witness replays: a fresh run under the same
        # mutation violates the same invariant.
        setup, algo, adv = world()
        ctl = ReplayController(
            list(outcome.choices), mutation=MUTATION_SKIP_FIFO
        )
        trace = Trace()
        result = run_wakeup(
            setup, algo, adv, engine="async", seed=0,
            require_all_awake=False, trace=trace, controller=ctl,
        )
        ictx = InvariantContext(
            setup=setup, adversary=adv, result=result, trace=trace,
            log=ctl.log,
        )
        hits = [
            inv.name
            for inv in default_invariants("echo-flooding")
            if inv.check(ictx) is not None
        ]
        assert "fifo-per-channel" in hits

    def test_mutation_free_run_has_no_fifo_violation(self):
        world = _world(path_graph, 4, "echo-flooding", {0: 0.0})
        clean = explore(world, max_schedules=5_000)
        assert clean.stats.violations == 0

    def test_shrink_rejects_non_reproducing_witness(self):
        world = _world(cycle_graph, 4, "flooding", {0: 0.0})
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_violation(
                world,
                (0, 0),
                "fifo-per-channel",
                invariants=default_invariants("flooding"),
            )


class TestTelemetry:
    def test_check_stats_event_emitted(self):
        events = []

        class Capture:
            enabled = True

            def emit(self, kind, **fields):
                events.append((kind, fields))

        world = _world(cycle_graph, 3, "flooding", {0: 0.0})
        explore(world, recorder=Capture())
        kinds = [k for k, _ in events]
        assert kinds == ["check_stats"]
        _, fields = events[0]
        assert fields["violations"] == 0
        assert fields["completed"] is True
        assert fields["schedules"] >= 1
