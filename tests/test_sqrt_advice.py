"""Tests for the Theorem-5A sqrt-threshold advising scheme."""

import math

import pytest

from repro.core.sqrt_advice import SqrtThresholdAdvice, decode, encode_high, encode_low
from repro.graphs.generators import (
    caterpillar_graph,
    complete_graph,
    connected_erdos_renyi,
    grid_graph,
    star_graph,
)
from repro.graphs.traversal import diameter
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def run_scheme(graph, awake, seed=0, threshold=None):
    setup = make_setup(graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    return run_wakeup(
        setup,
        SqrtThresholdAdvice(threshold=threshold),
        adversary,
        engine="async",
        seed=seed + 1,
    )


class TestEncoding:
    def test_low_roundtrip(self):
        bits = encode_low([2, 5, 9], 12)
        assert decode(bits, 12) == [2, 5, 9]

    def test_high_is_single_bit(self):
        bits = encode_high()
        assert len(bits) == 1
        assert decode(bits, 50) is None


class TestSchemeShape:
    def test_star_center_gets_one_bit(self):
        """The star center is a high-degree tree node: 1-bit advice."""
        g = star_graph(100)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        advice = SqrtThresholdAdvice().compute_advice(setup)
        assert len(advice[0]) == 1
        # Leaves carry their (single) tree port: O(log n) bits.
        assert all(len(advice[v]) <= 20 for v in range(1, 100))

    def test_max_advice_sqrt_bound(self):
        for n in (64, 144):
            g = connected_erdos_renyi(n, 8.0 / n, seed=n)
            setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
            advice = SqrtThresholdAdvice().compute_advice(setup)
            bound = 4 * math.isqrt(n) * math.log2(n) + 16
            assert advice.max_bits <= bound

    def test_messages_at_most_n_sqrt_n(self):
        g = caterpillar_graph(5, 40)  # spine nodes are high-degree
        n = g.num_vertices
        r = run_scheme(g, [0], threshold=3)
        assert r.all_awake
        # high-degree nodes broadcast: still bounded by beta*maxdeg + 2n
        assert r.messages <= 5 * g.max_degree() + 2 * n

    def test_low_threshold_reduces_to_broadcast_everywhere(self):
        g = complete_graph(15)
        r = run_scheme(g, [0], threshold=0)
        assert r.all_awake
        assert r.messages == 15 * 14  # every node broadcast

    def test_huge_threshold_reduces_to_tree_flood(self):
        g = complete_graph(15)
        r = run_scheme(g, [0], threshold=10**6)
        assert r.all_awake
        assert r.messages <= 2 * 14


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_awake(self, seed):
        g = connected_erdos_renyi(45, 0.12, seed=seed)
        r = run_scheme(g, [0], seed=seed)
        assert r.all_awake

    def test_time_order_diameter(self):
        g = grid_graph(8, 8)
        r = run_scheme(g, [0])
        assert r.time_all_awake <= 2 * diameter(g) + 1
