"""Tests for the Theorem-5B child-encoding scheme (CEN)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.child_encoding import (
    ChildEncodingAdvice,
    decode_cen,
    encode_cen,
)
from repro.graphs.generators import (
    caterpillar_graph,
    complete_graph,
    connected_erdos_renyi,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.traversal import diameter
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def run_cen(graph, awake, seed=0, engine="async", trace=False):
    setup = make_setup(graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    return run_wakeup(
        setup, ChildEncodingAdvice(), adversary, engine=engine,
        seed=seed + 1, record_trace=trace,
    )


opt_port = st.one_of(st.none(), st.integers(1, 10**6))


@given(p=opt_port, fc=opt_port, n1=opt_port, n2=opt_port)
@settings(max_examples=80)
def test_cen_encoding_roundtrip(p, fc, n1, n2):
    bits = encode_cen(p, fc, (n1, n2))
    assert decode_cen(bits) == (p, fc, (n1, n2))


def test_cen_advice_is_logarithmic():
    """Max advice is O(log n) bits — the headline of Theorem 5B."""
    for n in (50, 200, 800):
        g = connected_erdos_renyi(n, 6.0 / n, seed=n)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        advice = ChildEncodingAdvice().compute_advice(setup)
        assert advice.max_bits <= 8 * math.log2(n) + 16


def test_cen_advice_star_center_constant():
    """Even the center of a star (n-1 children) stores only its first
    child's port: the rest is distributed among the children."""
    g = star_graph(200)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
    advice = ChildEncodingAdvice().compute_advice(setup)
    assert advice.max_bits <= 50


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(20),
            lambda: star_graph(30),
            lambda: grid_graph(6, 6),
            lambda: random_tree(40, seed=5),
            lambda: complete_graph(20),
            lambda: caterpillar_graph(8, 10),
            lambda: connected_erdos_renyi(50, 0.1, seed=3),
        ],
    )
    def test_all_awake_single_start(self, graph_factory):
        g = graph_factory()
        for start in list(g.vertices())[:: max(1, g.num_vertices // 4)]:
            r = run_cen(g, [start])
            assert r.all_awake, f"failed from start {start!r}"

    @pytest.mark.parametrize("engine", ["async", "sync"])
    def test_both_engines(self, engine):
        g = grid_graph(5, 5)
        r = run_cen(g, [12], engine=engine)
        assert r.all_awake

    def test_multi_source(self):
        g = random_tree(60, seed=9)
        r = run_cen(g, [0, 20, 40])
        assert r.all_awake

    def test_leaf_start_propagates_up_and_down(self):
        """Waking a deep leaf must wake the whole tree through the
        up-chain."""
        g = path_graph(15)
        r = run_cen(g, [14])
        assert r.all_awake


class TestBounds:
    def test_linear_messages(self):
        """<= ~3 messages per tree edge: up + probe + next."""
        for n in (40, 120):
            g = connected_erdos_renyi(n, 5.0 / n, seed=n)
            r = run_cen(g, [0])
            assert r.messages <= 3 * (n - 1)

    def test_linear_messages_many_sources(self):
        g = random_tree(100, seed=4)
        r = run_cen(g, list(g.vertices())[::10])
        assert r.messages <= 3 * 99

    def test_time_d_log_n(self):
        g = grid_graph(10, 10)
        d = diameter(g)
        n = g.num_vertices
        r = run_cen(g, [0])
        assert r.time_all_awake <= 4 * d * math.log2(n)

    def test_star_discovery_takes_log_rounds(self):
        """Discovering t children takes Theta(log t) alternations, not
        Theta(t)."""
        g = star_graph(129)  # 128 leaves
        r = run_cen(g, [0])
        # ~2 * log2(128) = 14 alternations; allow generous slack.
        assert r.time_all_awake <= 20
        assert r.time_all_awake >= math.log2(128)

    def test_congest_safe(self):
        g = star_graph(100)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        r = run_cen(g, [0])
        assert r.max_message_bits <= setup.bandwidth.cap_bits

    def test_each_tree_edge_carries_at_most_three(self):
        g = random_tree(50, seed=8)
        r = run_cen(g, [25], trace=True)
        from collections import Counter

        usage = Counter(
            frozenset((repr(m.src), repr(m.dst))) for m in r.trace.sends()
        )
        assert all(c <= 3 for c in usage.values())
