"""Tests for the Sec-1.3 star-sampling failure demonstration."""

import pytest

from repro.core.star_broadcast import StarBroadcast
from repro.errors import WakeUpFailure
from repro.graphs.generators import complete_graph, star_graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def run_star(graph, awake, seed=0, p=None, thresh=None):
    setup = make_setup(graph, knowledge=Knowledge.KT1, bandwidth="CONGEST", seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    return run_wakeup(
        setup,
        StarBroadcast(star_probability=p, degree_threshold=thresh),
        adversary,
        engine="async",
        seed=seed + 1,
        require_all_awake=False,
    )


def test_single_high_degree_wake_fails_whp():
    """The Sec-1.3 attack: wake one high-degree node; with the star
    probability forced to ~0 it stays silent and the run fails."""
    g = complete_graph(30)
    r = run_star(g, [0], p=0.0, thresh=5.0)
    assert not r.all_awake
    assert len(r.asleep) == 29
    assert r.messages == 0


def test_star_always_broadcasts():
    g = complete_graph(20)
    r = run_star(g, [0], p=1.0, thresh=5.0)
    assert r.all_awake


def test_low_degree_nodes_exempt_from_silence():
    """Nodes under the degree threshold may talk even as non-stars."""
    g = star_graph(20)  # leaves have degree 1
    r = run_star(g, [5], p=0.0, thresh=5.0)
    assert r.all_awake  # leaf broadcasts; center relays


def test_failure_rate_matches_star_probability():
    """Empirical failure rate ~ 1 - p when a single high-degree node is
    woken."""
    g = complete_graph(25)
    p = 0.3
    fails = 0
    trials = 40
    for seed in range(trials):
        r = run_star(g, [0], seed=seed, p=p, thresh=5.0)
        if not r.all_awake:
            fails += 1
    rate = fails / trials
    assert 0.4 <= rate <= 0.95  # ~0.7 expected


def test_all_awake_assumption_rescues_it():
    """Under the all-awake assumption of the original MST setting the
    algorithm works fine — the failure is adversarial-wake-up-specific."""
    g = complete_graph(25)
    r = run_star(g, list(g.vertices()), p=0.0, thresh=5.0)
    # Everyone is awake by assumption, so "wake-up" is trivially solved.
    assert r.all_awake


def test_runner_raises_when_strict():
    g = complete_graph(10)
    setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
    adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
    with pytest.raises(WakeUpFailure):
        run_wakeup(
            setup,
            StarBroadcast(star_probability=0.0, degree_threshold=2.0),
            adversary,
            engine="async",
        )
