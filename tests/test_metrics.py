"""Tests for the metrics layer (`repro.obs.metrics`) and integrations.

The guarantees under test, matching docs/observability.md:

* **instruments** — counters only go up, gauges keep last/max,
  histograms bucket with `le` semantics into fixed bounds;
* **determinism** — two identical runs produce bit-identical
  ``snapshot(deterministic_only=True)`` dicts, and enabling metrics
  never changes a run's result rows (metrics observe, they never
  participate);
* **merge / fork-exactness** — worker registry deltas shipped through
  the ``CellOutcome`` path sum to exactly the inline-execution
  registry, including sweeps with crashed and timed-out cells, and
  cached cells contribute nothing;
* **exporters** — the Prometheus rendering is cumulative and
  self-consistent, quantile estimation interpolates buckets, and
  ``validate_snapshot`` rejects malformed payloads;
* **dashboard** — ``render_top`` summarizes executor/cache/engine
  series; ``TopView`` speaks the executor progress protocol.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.registry import get_algorithm
from repro.experiments.parallel import CellSpec, ParallelSweepExecutor
from repro.graphs.compile import clear_memory_cache
from repro.graphs.generators import connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup
from repro.obs.metrics import (
    CATALOG,
    NULL_REGISTRY,
    ROUND_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
    get_registry,
    histogram_quantile,
    is_timing,
    parse_series_key,
    render_prometheus,
    series_key,
    set_global_registry,
    validate_snapshot,
)
from repro.obs.top import TopView, render_top
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup

FAULT_ALGOS = "tests.test_parallel_executor"


@pytest.fixture
def live_registry():
    """Install a fresh global registry; restore the previous on exit."""
    registry = MetricsRegistry()
    previous = set_global_registry(registry)
    try:
        yield registry
    finally:
        set_global_registry(previous)


def _small_run(engine="async", algorithm="flooding", n=24):
    algo = get_algorithm(algorithm)
    graph = connected_erdos_renyi(n, 4.0 / (n - 1), seed=3)
    knowledge = Knowledge.KT1 if algo.requires_kt1 else Knowledge.KT0
    bandwidth = "CONGEST" if algo.congest_safe else "LOCAL"
    setup = make_setup(graph, knowledge=knowledge, bandwidth=bandwidth,
                       seed=5)
    v0 = next(iter(graph.vertices()))
    adversary = Adversary(WakeSchedule.all_at_once([v0]), UnitDelay())
    return run_wakeup(setup, algo, adversary, engine=engine, seed=9)


def _cells(count=4, algorithm="flooding", **kw):
    return [
        CellSpec(
            algorithm=algorithm,
            n=16 + 8 * (i % 2),
            trial=i // 2,
            seed=1,
            engine="async",
            knowledge="KT0",
            bandwidth="CONGEST",
            workload={"kind": "er_single_wake", "avg_degree": 3.0,
                      "seed": 1},
            **kw,
        )
        for i in range(count)
    ]


def _fault_cell(algorithm, **kw):
    return CellSpec(
        algorithm=algorithm,
        n=12,
        seed=1,
        engine="async",
        knowledge="KT0",
        bandwidth="CONGEST",
        workload={"kind": "er_single_wake", "avg_degree": 3.0, "seed": 1},
        **kw,
    )


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_engine_messages_total", engine="async")
        c.inc()
        c.inc(41.0)
        assert c.value == 42.0
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_gauge_set_and_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_executor_workers")
        g.set(4)
        g.max(2)
        assert g.value == 4.0
        g.max(8)
        assert g.value == 8.0

    def test_histogram_le_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_engine_frontier_size", engine="sync")
        assert h.bounds == SIZE_BUCKETS
        h.observe(1)      # == bounds[0] -> first bucket (le semantics)
        h.observe(1.5)    # -> (1, 2] bucket
        h.observe(2**21)  # beyond the last bound -> +Inf bucket
        assert h.counts[0] == 1
        assert h.counts[1] == 1
        assert h.counts[-1] == 1
        assert h.count == 3

    def test_same_labels_return_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_runs_total", algorithm="flooding",
                        engine="async")
        b = reg.counter("repro_runs_total", engine="async",
                        algorithm="flooding")
        assert a is b  # label order never splits a series

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("x_total")

    def test_series_key_round_trip(self):
        key = series_key("m", {"b": "2", "a": "1"})
        assert key == 'm{a="1",b="2"}'
        assert parse_series_key(key) == ("m", {"a": "1", "b": "2"})
        assert parse_series_key("bare") == ("bare", {})

    def test_null_registry_is_inert(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x_total").inc()
        NULL_REGISTRY.gauge("y").set(3)
        NULL_REGISTRY.histogram("z").observe(1)
        snap = NULL_REGISTRY.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_catalog_names_follow_conventions(self):
        for name, meta in CATALOG.items():
            if meta["type"] == "counter":
                assert name.endswith("_total"), name
            if is_timing(name):
                assert meta["type"] in ("histogram", "gauge")


# ----------------------------------------------------------------------
# Snapshot & merge
# ----------------------------------------------------------------------
class TestSnapshotMerge:
    def test_snapshot_round_trips_through_merge(self):
        reg = MetricsRegistry()
        reg.counter("a_total", k="v").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        other = MetricsRegistry()
        other.merge_snapshot(json.loads(json.dumps(reg.snapshot())))
        assert other.snapshot() == reg.snapshot()

    def test_merge_adds_counters_and_buckets_maxes_gauges(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        reg.merge_snapshot(snap)
        merged = reg.snapshot()
        assert merged["counters"]["a_total"] == 6.0
        assert merged["gauges"]["g"] == 7.0  # max, not sum
        assert merged["histograms"]["h"]["counts"] == [0, 2, 0]
        assert merged["histograms"]["h"]["count"] == 2

    def test_merge_rejects_mismatched_bounds(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            reg.merge_snapshot(
                {"histograms": {"h": {"le": [1.0, 4.0],
                                      "counts": [0, 0, 1],
                                      "sum": 3.0, "count": 1}}}
            )

    def test_deterministic_only_drops_seconds_families(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.histogram("repro_phase_seconds", phase="engine").observe(0.1)
        reg.gauge("repro_executor_wall_seconds").set(0.5)
        snap = reg.snapshot(deterministic_only=True)
        assert "a_total" in snap["counters"]
        assert snap["histograms"] == {}
        assert snap["gauges"] == {}

    def test_global_registry_swap_returns_previous(self):
        reg = MetricsRegistry()
        prev = set_global_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            assert set_global_registry(prev) is reg
        assert get_registry() is prev


# ----------------------------------------------------------------------
# Determinism: bit-identical snapshots, untouched result rows
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("engine,algorithm", [
        ("async", "flooding"),
        ("sync", "fast-wakeup"),
    ])
    def test_identical_runs_snapshot_identically(self, engine, algorithm):
        snaps = []
        for _ in range(2):
            registry = MetricsRegistry()
            previous = set_global_registry(registry)
            try:
                _small_run(engine=engine, algorithm=algorithm)
            finally:
                set_global_registry(previous)
            snaps.append(registry.snapshot(deterministic_only=True))
        assert json.dumps(snaps[0], sort_keys=True) == json.dumps(
            snaps[1], sort_keys=True
        )
        # and the run actually registered
        runs = {
            k: v for k, v in snaps[0]["counters"].items()
            if k.startswith("repro_engine_runs_total")
        }
        assert sum(runs.values()) == 1

    @pytest.mark.parametrize("engine,algorithm", [
        ("async", "flooding"),
        ("sync", "fast-wakeup"),
        ("async", "dfs-rank"),
    ])
    def test_metrics_never_change_result_rows(self, engine, algorithm):
        baseline = _small_run(engine=engine, algorithm=algorithm)
        registry = MetricsRegistry()
        previous = set_global_registry(registry)
        try:
            observed = _small_run(engine=engine, algorithm=algorithm)
        finally:
            set_global_registry(previous)
        for field in ("messages", "bits", "time", "time_all_awake",
                      "all_awake", "advice_max_bits"):
            assert getattr(observed, field) == getattr(baseline, field)
        assert registry.snapshot()["counters"]  # metrics were live


# ----------------------------------------------------------------------
# Fork aggregation through the executor
# ----------------------------------------------------------------------
class TestExecutorAggregation:
    def _run(self, cells, registry, **kw):
        clear_memory_cache()
        ex = ParallelSweepExecutor(
            use_cache=False, metrics=registry, **kw
        )
        return ex.run(cells)

    def test_fork_deltas_match_inline_exactly(self):
        cells = _cells(4)
        inline, forked = MetricsRegistry(), MetricsRegistry()
        self._run(cells, inline, workers=0)
        self._run(cells, forked, workers=2)

        def engine_series(reg):
            return {
                k: v
                for k, v in reg.snapshot(
                    deterministic_only=True
                )["counters"].items()
                if k.startswith(("repro_engine_", "repro_runs_total",
                                 "repro_run_"))
            }

        assert engine_series(forked) == engine_series(inline)
        assert engine_series(inline)  # non-empty

    def test_crash_and_timeout_cells_are_counted(self):
        cells = (
            _cells(2)
            + [_fault_cell(f"{FAULT_ALGOS}:KillerAlgo")]
            + [_fault_cell(f"{FAULT_ALGOS}:SleeperAlgo", trial=1)]
        )
        registry = MetricsRegistry()
        out = self._run(
            cells, registry, workers=2, cell_timeout=1.0
        )
        assert sorted(o.status for o in out) == [
            "crashed", "ok", "ok", "timeout"
        ]
        counters = registry.snapshot()["counters"]

        def total(name, **labels):
            acc = 0.0
            for key, value in counters.items():
                n, lbl = parse_series_key(key)
                if n == name and all(
                    lbl.get(k) == v for k, v in labels.items()
                ):
                    acc += value
            return acc

        assert total("repro_executor_cells_total") == 4
        assert total("repro_executor_cells_total", status="ok") == 2
        assert total("repro_executor_cells_total", status="crashed") == 1
        assert total("repro_executor_cells_total", status="timeout") == 1
        assert total("repro_executor_cell_retries_total") >= 1
        # only the two good cells completed an engine run; the crashed
        # worker shipped no delta and the timed-out cell never finished
        assert total("repro_engine_runs_total") == 2

    def test_cached_cells_contribute_no_engine_counters(self, tmp_path):
        cells = _cells(4)
        cold, warm = MetricsRegistry(), MetricsRegistry()
        kw = dict(workers=0, cache_dir=tmp_path / "cache",
                  use_cache=True)
        clear_memory_cache()
        ParallelSweepExecutor(metrics=cold, **kw).run(cells)
        clear_memory_cache()
        ex = ParallelSweepExecutor(metrics=warm, **kw)
        out = ex.run(cells)
        assert all(o.cached for o in out)
        counters = warm.snapshot()["counters"]
        assert not any(
            k.startswith("repro_engine_") for k in counters
        )
        # hit-rate series match the executor's own stats exactly
        hit_key = 'repro_cellcache_fetch_total{outcome="hit"}'
        miss_key = 'repro_cellcache_fetch_total{outcome="miss"}'
        assert counters[hit_key] == ex.stats["cached"] == len(cells)
        assert counters.get(miss_key, 0) == 0
        cached_key = (
            'repro_executor_cells_total{cached="yes",status="ok"}'
        )
        assert counters[cached_key] == len(cells)

    def test_results_identical_with_metrics_on_and_off(self):
        cells = _cells(4)
        clear_memory_cache()
        plain = ParallelSweepExecutor(workers=2, use_cache=False).run(
            cells
        )
        clear_memory_cache()
        metered = ParallelSweepExecutor(
            workers=2, use_cache=False, metrics=MetricsRegistry()
        ).run(cells)
        assert [o.status for o in plain] == [o.status for o in metered]
        # Deterministic result scalars are bit-identical; only the
        # wall-clock phase profile may differ between any two runs.
        for a, b in zip(plain, metered):
            for field in ("messages", "bits", "max_message_bits",
                          "time", "time_all_awake", "all_awake",
                          "advice_max_bits", "wake_time"):
                assert getattr(a.result, field) == getattr(
                    b.result, field
                )
            assert (a.result.metrics.messages_total
                    == b.result.metrics.messages_total)
            assert (a.result.metrics.edge_messages
                    == b.result.metrics.edge_messages)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("repro_engine_messages_total", engine="async").inc(64)
        reg.gauge("repro_executor_workers").set(2)
        h = reg.histogram("repro_run_time", algorithm="flooding",
                          engine="async")
        for v in (1.0, 3.0, 5.0):
            h.observe(v)
        return reg

    def test_prometheus_rendering_shape(self):
        text = render_prometheus(self._populated().snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_engine_messages_total counter" in lines
        assert "# TYPE repro_executor_workers gauge" in lines
        assert "# TYPE repro_run_time histogram" in lines
        assert 'repro_engine_messages_total{engine="async"} 64' in lines
        # buckets are cumulative and end at +Inf == _count
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("repro_run_time_bucket")
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 3
        assert any(
            'le="+Inf"' in line
            for line in lines
            if line.startswith("repro_run_time_bucket")
        )
        count_line = [
            line for line in lines
            if line.startswith("repro_run_time_count")
        ]
        assert count_line and count_line[0].endswith(" 3")
        # HELP text comes from the catalog
        assert any(
            line.startswith("# HELP repro_engine_messages_total")
            for line in lines
        )

    def test_quantiles_interpolate_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_run_messages", buckets=ROUND_BUCKETS)
        for v in (1, 3, 900, 2**21):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["repro_run_messages"]
        assert histogram_quantile(snap, 0.50) == pytest.approx(4.0)
        # +Inf observations clamp to the largest finite bound
        assert histogram_quantile(snap, 1.0) == ROUND_BUCKETS[-1]
        assert histogram_quantile(
            {"le": [1.0], "counts": [0, 0], "sum": 0, "count": 0}, 0.5
        ) == 0.0

    def test_validate_snapshot_accepts_real_and_rejects_broken(self):
        snap = self._populated().snapshot()
        assert validate_snapshot(json.loads(json.dumps(snap))) == []
        assert validate_snapshot([]) != []
        assert validate_snapshot({}) != []
        bad = json.loads(json.dumps(snap))
        bad["counters"]["x_total"] = -1
        assert any("negative" in e for e in validate_snapshot(bad))
        bad = json.loads(json.dumps(snap))
        key = next(iter(bad["histograms"]))
        bad["histograms"][key]["counts"].append(7)
        assert validate_snapshot(bad) != []
        bad = json.loads(json.dumps(snap))
        bad["histograms"][key]["count"] = 999
        assert any("bucket sum" in e for e in validate_snapshot(bad))


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
class TestTop:
    def _sweep_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        clear_memory_cache()
        ParallelSweepExecutor(
            workers=0, cache_dir=tmp_path / "cache", use_cache=True,
            metrics=registry,
        ).run(_cells(2))
        return registry.snapshot()

    def test_render_top_summarizes_sweep(self, tmp_path):
        frame = render_top(self._sweep_snapshot(tmp_path))
        assert "executor   cells 2 (ok 2" in frame
        assert "caches" in frame
        assert "engines    runs 2" in frame

    def test_render_top_rates_against_previous_frame(self, tmp_path):
        snap = self._sweep_snapshot(tmp_path)
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        frame = render_top(snap, prev=empty, dt=2.0)
        assert "rate 1.0/s" in frame

    def test_topview_speaks_progress_protocol(self, tmp_path):
        buf = io.StringIO()
        registry = MetricsRegistry()
        view = TopView(stream=buf, registry=registry, min_interval=0.0)
        clear_memory_cache()
        ParallelSweepExecutor(
            workers=0, use_cache=False, metrics=registry, progress=view,
        ).run(_cells(2))
        out = buf.getvalue()
        assert "executor   cells 2" in out
        assert out.endswith("\n")
