"""Property tests on the NodeContext contract (the knowledge API every
algorithm sees)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ModelViolation, SimulationError
from repro.graphs.generators import connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.async_engine import AsyncEngine
from repro.sim.node import NodeAlgorithm

SETTINGS = dict(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class ContextProbe(NodeAlgorithm):
    """Inspects its context on wake and records consistency facts."""

    def __init__(self, kt1: bool):
        self._kt1 = kt1
        self.facts = {}

    def on_wake(self, ctx):
        self.facts["degree"] = ctx.degree
        self.facts["ports"] = list(ctx.ports)
        self.facts["node_id"] = ctx.node_id
        self.facts["log_bound"] = ctx.log2_n_bound
        if self._kt1:
            nids = ctx.neighbor_ids()
            self.facts["neighbor_ids"] = nids
            self.facts["roundtrip"] = all(
                ctx.port_of(ctx.neighbor_id(p)) == p for p in ctx.ports
            )
            self.facts["list_matches_ports"] = nids == [
                ctx.neighbor_id(p) for p in ctx.ports
            ]
        else:
            try:
                ctx.neighbor_ids()
                self.facts["kt0_leak"] = True
            except ModelViolation:
                self.facts["kt0_leak"] = False
        # send API validation
        try:
            ctx.send(0, ("x",))
            self.facts["port_zero_allowed"] = True
        except SimulationError:
            self.facts["port_zero_allowed"] = False
        try:
            ctx.send(ctx.degree + 1, ("x",))
            self.facts["port_over_allowed"] = True
        except SimulationError:
            self.facts["port_over_allowed"] = False


def run_probe(seed: int, knowledge: Knowledge):
    g = connected_erdos_renyi(15, 0.25, seed=seed)
    setup = make_setup(g, knowledge=knowledge, seed=seed)
    nodes = {v: ContextProbe(knowledge is Knowledge.KT1) for v in g.vertices()}
    adversary = Adversary(
        WakeSchedule.all_at_once(list(g.vertices())), UnitDelay()
    )
    AsyncEngine(setup, nodes, adversary, seed=seed).run()
    return g, setup, nodes


def test_lazy_rng_stream_matches_eager_random():
    """Contexts built with a seed (the engines' fast path) must expose
    the identical random stream as one built with a ready generator."""
    from repro.sim.node import NodeContext

    g = connected_erdos_renyi(6, 0.5, seed=1)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
    v = next(iter(g.vertices()))
    lazy = NodeContext(v, setup, 12345)
    eager = NodeContext(v, setup, random.Random(12345))
    assert [lazy.rng.random() for _ in range(20)] == [
        eager.rng.random() for _ in range(20)
    ]
    # The constructed generator is kept, not rebuilt per access.
    assert lazy.rng is lazy.rng


@given(seed=st.integers(0, 5000))
@settings(**SETTINGS)
def test_kt1_context_consistency(seed):
    g, setup, nodes = run_probe(seed, Knowledge.KT1)
    for v, node in nodes.items():
        assert node.facts["degree"] == g.degree(v)
        assert node.facts["ports"] == list(range(1, g.degree(v) + 1))
        assert node.facts["node_id"] == setup.id_of(v)
        assert node.facts["roundtrip"]
        assert node.facts["list_matches_ports"]
        assert sorted(node.facts["neighbor_ids"]) == sorted(
            setup.id_of(u) for u in g.neighbors(v)
        )


@given(seed=st.integers(0, 5000))
@settings(**SETTINGS)
def test_kt0_context_blocks_ids_and_validates_ports(seed):
    g, setup, nodes = run_probe(seed, Knowledge.KT0)
    for node in nodes.values():
        assert node.facts["kt0_leak"] is False
        assert node.facts["port_zero_allowed"] is False
        assert node.facts["port_over_allowed"] is False


@given(seed=st.integers(0, 5000))
@settings(**SETTINGS)
def test_log_bound_known_to_all(seed):
    g, setup, nodes = run_probe(seed, Knowledge.KT0)
    bounds = {node.facts["log_bound"] for node in nodes.values()}
    assert len(bounds) == 1
    (bound,) = bounds
    assert 2 ** bound >= g.num_vertices
