"""Tests for the experiment drivers (Table-1 runner and sweeps)."""

import pytest

from repro.core.flooding import Flooding
from repro.experiments.sweeps import (
    dense_er_all_awake,
    er_fraction_wake,
    er_single_wake,
    grid_corner_wake,
    sweep,
    tree_random_wake,
)
from repro.experiments.table1 import (
    measure_table1,
    render_table1,
    workload_context,
)
from repro.models.knowledge import Knowledge


class TestSweep:
    def test_flooding_sweep_shape(self):
        rows = sweep(
            Flooding,
            er_single_wake(avg_degree=4.0, seed=1),
            sizes=[20, 40],
            knowledge=Knowledge.KT0,
            trials=2,
            seed=3,
        )
        assert [r.n for r in rows] == [20, 40]
        assert all(r.messages > 0 for r in rows)
        assert rows[1].messages > rows[0].messages
        assert all(r.trials == 2 for r in rows)

    def test_sweep_records_rho(self):
        rows = sweep(
            Flooding,
            grid_corner_wake(),
            sizes=[16, 36],
            knowledge=Knowledge.KT0,
            trials=1,
        )
        # corner wake on a side x side grid: rho = 2 (side - 1)
        assert rows[0].rho_awk == 6
        assert rows[1].rho_awk == 10

    def test_sweep_row_dict(self):
        rows = sweep(
            Flooding,
            tree_random_wake(seed=2),
            sizes=[15],
            knowledge=Knowledge.KT0,
            trials=1,
        )
        d = rows[0].as_dict()
        assert {"n", "rho", "messages", "time"} <= set(d)

    def test_workloads_produce_connected_graphs(self):
        from repro.graphs.traversal import is_connected

        for workload in (
            er_single_wake(seed=1),
            er_fraction_wake(seed=2),
            dense_er_all_awake(seed=3),
            grid_corner_wake(),
            tree_random_wake(seed=4),
        ):
            g, awake = workload(30)
            assert is_connected(g)
            assert awake
            assert all(v in g for v in awake)


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return measure_table1(n=60, avg_degree=6.0, seed=2)

    def test_all_rows_present(self, rows):
        labels = [r.row for r in rows]
        assert labels == [
            "Thm 3", "Thm 4", "Cor 1", "Thm 5A", "Thm 5B", "Thm 6",
            "Cor 2", "baseline",
        ]

    def test_all_rows_completed(self, rows):
        assert all(r.messages > 0 for r in rows)
        assert all(r.time > 0 for r in rows)

    def test_advice_rows_have_advice(self, rows):
        by_label = {r.row: r for r in rows}
        for label in ("Cor 1", "Thm 5A", "Thm 5B", "Thm 6", "Cor 2"):
            assert by_label[label].advice_max_bits > 0
        for label in ("Thm 3", "Thm 4", "baseline"):
            assert by_label[label].advice_max_bits == 0

    def test_who_wins_orderings(self, rows):
        """The qualitative Table-1 story on a shared workload."""
        by_label = {r.row: r for r in rows}
        # Advice schemes with O(n) message bounds beat flooding:
        assert by_label["Cor 1"].messages < by_label["baseline"].messages
        assert by_label["Thm 5B"].messages < by_label["baseline"].messages
        # Flooding is the fastest (time-optimal baseline):
        assert by_label["baseline"].time <= min(
            by_label["Thm 3"].time, by_label["Thm 5B"].time
        )
        # Thm 5B trades time for advice against Cor 1:
        assert (
            by_label["Thm 5B"].advice_max_bits
            < by_label["Cor 1"].advice_max_bits + 64
        )

    def test_render(self, rows):
        text = render_table1(rows)
        assert "Thm 3" in text and "paper_msgs" in text

    def test_workload_context(self):
        ctx = workload_context(n=60, seed=2)
        assert ctx["n"] == 60
        assert ctx["rho_awk"] >= 1
        assert ctx["diameter"] >= ctx["rho_awk"]
