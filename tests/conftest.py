"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs.generators import (
    connected_erdos_renyi,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule


def pytest_collection_modifyitems(config, items):
    """Auto-skip ``bulk``-marked tests when the repro[bulk] extras
    (numpy + scipy) are not installed — the dependency-light seed
    environment stays green without them."""
    from repro.sim.bulk import HAS_BULK

    if HAS_BULK:
        return
    skip = pytest.mark.skip(
        reason="repro[bulk] extras not installed (pip install repro[bulk])"
    )
    for item in items:
        if "bulk" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def small_graphs():
    """A zoo of small named graphs covering the structural corner cases."""
    return {
        "path10": path_graph(10),
        "cycle8": cycle_graph(8),
        "star12": star_graph(12),
        "grid4x4": grid_graph(4, 4),
        "tree20": random_tree(20, seed=7),
        "er30": connected_erdos_renyi(30, 0.15, seed=11),
    }


@pytest.fixture
def kt1_setup():
    """A KT1 LOCAL setup on a 30-node connected ER graph."""
    g = connected_erdos_renyi(30, 0.15, seed=5)
    return make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=2)


@pytest.fixture
def kt0_setup():
    """A KT0 CONGEST setup on the same topology."""
    g = connected_erdos_renyi(30, 0.15, seed=5)
    return make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=2)


@pytest.fixture
def single_wake_adversary():
    def make(graph, vertex=None):
        if vertex is None:
            vertex = next(iter(graph.vertices()))
        return Adversary(WakeSchedule.singleton(vertex), UnitDelay())

    return make


@pytest.fixture
def rng():
    return random.Random(1234)
