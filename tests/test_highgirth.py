"""Tests for the Lazebnik–Ustimenko D(k, q) construction."""

import pytest

from repro.errors import FieldError, GraphError
from repro.graphs.highgirth import (
    DkqGraph,
    dkq_graph,
    is_prime_power,
    smallest_prime_power_at_least,
    usable_prime_powers,
)
from repro.graphs.traversal import girth, is_bipartite

INSTANCES = [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (3, 5), (4, 2), (5, 2)]


@pytest.mark.parametrize("k,q", INSTANCES)
class TestStructure:
    def test_vertex_count(self, k, q):
        d = dkq_graph(k, q)
        assert d.graph.num_vertices == 2 * q**k
        assert len(d.points) == q**k
        assert len(d.lines) == q**k

    def test_q_regular(self, k, q):
        d = dkq_graph(k, q)
        assert all(d.graph.degree(v) == q for v in d.graph.vertices())

    def test_edge_count(self, k, q):
        # q-regular bipartite with q^k vertices per side.
        d = dkq_graph(k, q)
        assert d.graph.num_edges == q ** (k + 1)

    def test_bipartite(self, k, q):
        d = dkq_graph(k, q)
        assert is_bipartite(d.graph)
        for u, v in d.graph.edges():
            assert {u[0], v[0]} == {"P", "L"}

    def test_girth_guarantee(self, k, q):
        """[LUW95]: girth >= k + 5 for odd k (k + 4 for even k)."""
        d = dkq_graph(k, q)
        assert girth(d.graph) >= d.guaranteed_girth


@pytest.mark.parametrize("k,q", [(3, 3), (4, 2), (5, 2)])
class TestIncidence:
    def test_line_through_is_incident(self, k, q):
        d = dkq_graph(k, q)
        for _, pt in d.points[:10]:
            for l1 in range(q):
                ln = d.line_through(pt, l1)
                assert ln[0] == l1
                assert d.incident(pt, ln)

    def test_point_on_inverts_line_through(self, k, q):
        d = dkq_graph(k, q)
        for _, pt in d.points[:10]:
            for l1 in range(q):
                ln = d.line_through(pt, l1)
                assert d.point_on(ln, pt[0]) == pt

    def test_neighbors_unique_per_first_coordinate(self, k, q):
        d = dkq_graph(k, q)
        _, pt = d.points[0]
        lines = {d.line_through(pt, l1) for l1 in range(q)}
        assert len(lines) == q

    def test_graph_edges_match_incidence(self, k, q):
        d = dkq_graph(k, q)
        for (tp, pt), (tl, ln) in list(d.graph.edges())[:50]:
            if tp == "L":
                (tp, pt), (tl, ln) = (tl, ln), (tp, pt)
            assert d.incident(pt, ln)


class TestValidation:
    def test_k_too_small(self):
        with pytest.raises(GraphError):
            dkq_graph(1, 3)

    def test_non_prime_power_q(self):
        with pytest.raises(FieldError):
            dkq_graph(3, 6)

    def test_prime_power_helpers(self):
        assert is_prime_power(9)
        assert not is_prime_power(12)
        assert smallest_prime_power_at_least(6) == 7
        assert smallest_prime_power_at_least(2) == 2
        assert usable_prime_powers(10) == [2, 3, 4, 5, 7, 8, 9]


def test_girth_grows_with_k():
    """The construction's whole point: deeper coordinates, longer
    shortest cycles."""
    g3 = girth(dkq_graph(3, 3).graph)
    g5 = girth(dkq_graph(5, 2).graph)
    assert g3 >= 8
    assert g5 >= 10
    assert g5 > girth(dkq_graph(2, 2).graph)
