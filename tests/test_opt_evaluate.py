"""Executor-cell candidate evaluation (repro.opt.evaluate) and the
cell-routed random baseline (repro.check.worstcase).

The load-bearing properties:

* a ``check_world`` cell is bit-compatible with the checker's own
  world builder + ``run_wakeup`` at the same seeds;
* the cell-routed ``random_baseline`` path is bit-identical to the
  serial loop it replaces;
* candidate populations actually flow through the executor (dedup, the
  on-disk cache, metrics).
"""

import pytest

from repro.check.worlds import build_check_world
from repro.check.worstcase import (
    _score,
    baseline_trial_specs,
    random_baseline,
)
from repro.core.registry import get_algorithm
from repro.errors import SimulationError
from repro.experiments.parallel import ParallelSweepExecutor, cell_key
from repro.obs.metrics import MetricsRegistry, set_global_registry
from repro.opt.evaluate import (
    CellEvaluator,
    check_world_spec,
    controlled_log_for,
    optimize,
    workload_spec,
)
from repro.opt.genomes import (
    ChoicePrefixGenome,
    DelayVectorGenome,
    DelayVectorSpace,
)
from repro.opt.optimizers import make_optimizer
from repro.sim.adversary import Adversary, UniformRandomDelay
from repro.sim.runner import run_wakeup


def serial_executor(tmp_path, **kw):
    return ParallelSweepExecutor(
        workers=0, cache_dir=tmp_path / "cache",
        topology_dir=tmp_path / "topo", **kw
    )


class TestCheckWorldSpec:
    @pytest.mark.parametrize("graph", ["star", "cycle", "er"])
    def test_cell_matches_direct_check_world_run(self, graph, tmp_path):
        """One executor cell == build_check_world + run_wakeup, bit
        for bit, under the shared seed convention."""
        algo = get_algorithm("flooding")
        n, seed = 12, 5
        world, _times = build_check_world(
            algo, n, graph=graph, awake=2, stagger=0.25, seed=seed
        )
        setup, algorithm, adversary = world()
        randomized = Adversary(
            adversary.schedule, UniformRandomDelay(seed=99)
        )
        direct = run_wakeup(
            setup, algorithm, randomized, engine="async", seed=seed,
            require_all_awake=False,
        )

        spec = check_world_spec(
            "flooding", n, graph=graph, awake=2, stagger=0.25,
            seed=seed,
        )
        # build_check_world folds the stagger into the wake schedule;
        # the spec carries it in the schedule field.
        from dataclasses import replace

        spec = replace(
            spec,
            schedule={"kind": "staggered", "stagger": 0.25},
            delay={"kind": "uniform", "seed": 99},
        )
        out = serial_executor(tmp_path).run([spec])[0]
        assert out.result is not None, out.error
        assert out.result.messages == direct.messages
        assert out.result.bits == direct.bits
        assert out.result.time == direct.time

    def test_workload_spec_traits_follow_algorithm(self):
        spec = workload_spec(
            "dfs-rank", {"kind": "er_graph", "degree": 3.0}, 32
        )
        assert spec.knowledge == "KT1"  # dfs-rank requires KT1
        assert spec.bandwidth == "LOCAL"
        assert spec.engine == "async"
        assert spec.setup_seed == spec.seed + 2
        assert spec.exec_seed == spec.seed


class TestCellRoutedBaseline:
    @pytest.mark.parametrize("graph", ["star", "cycle", "er"])
    @pytest.mark.parametrize("objective", ["time", "messages"])
    def test_bit_identical_to_serial_loop(
        self, graph, objective, tmp_path
    ):
        algo = get_algorithm("flooding")
        n, seed = 10, 3
        world, _ = build_check_world(algo, n, graph=graph, seed=seed)
        serial = random_baseline(
            world, objective, trials=6, seed=seed
        )
        routed = random_baseline(
            None,
            objective,
            trials=6,
            seed=seed,
            executor=serial_executor(tmp_path),
            base_spec=check_world_spec(
                "flooding", n, graph=graph, seed=seed
            ),
        )
        assert routed == serial

    def test_needs_both_executor_and_spec(self, tmp_path):
        with pytest.raises(SimulationError):
            random_baseline(
                None, "time", executor=serial_executor(tmp_path)
            )
        with pytest.raises(SimulationError):
            random_baseline(
                None, "time",
                base_spec=check_world_spec("flooding", 8),
            )

    def test_trial_specs_share_the_world(self):
        base = check_world_spec("flooding", 16, seed=4)
        specs = baseline_trial_specs(base, trials=5, seed=4)
        assert len(specs) == 5
        assert len({s.delay["seed"] for s in specs}) == 5
        for s in specs:
            assert s.setup_seed == base.setup_seed
            assert s.exec_seed == 4
            assert s.delay["kind"] == "uniform"
            assert not s.require_all_awake
        # Distinct trials are distinct cells (no accidental cache
        # collapse).
        assert len({cell_key(s) for s in specs}) == 5


class TestCellEvaluator:
    def test_in_generation_dedup(self, tmp_path):
        base = check_world_spec("flooding", 8)
        ev = CellEvaluator(serial_executor(tmp_path), base, "time")
        g = DelayVectorGenome((0.5, 0.9))
        h = DelayVectorGenome((0.9, 0.5))
        scores = ev.evaluate([g, h, g, g])
        assert ev.evaluations == 2
        assert ev.dedup_hits == 2
        assert scores[0] == scores[2] == scores[3]
        assert all(s is not None for s in scores)

    def test_controlled_genomes_fold_check_salt(self):
        from repro.experiments.parallel import _cell_salts

        base = check_world_spec("flooding", 8)
        ev = CellEvaluator(
            ParallelSweepExecutor(workers=0, use_cache=False),
            base,
            "time",
        )
        plain = ev.spec_for(DelayVectorGenome((0.5,)))
        controlled = ev.spec_for(ChoicePrefixGenome((0, 1, 0)))
        assert "check" not in _cell_salts(plain)
        assert "check" in _cell_salts(controlled)

    def test_controlled_log_matches_cell_score(self, tmp_path):
        base = check_world_spec("flooding", 8)
        ev = CellEvaluator(serial_executor(tmp_path), base, "time")
        genome = ChoicePrefixGenome((1, 0, 2, 1), laziness=1.0)
        (score,) = ev.evaluate([genome])
        result, log = controlled_log_for(ev.spec_for(genome))
        assert _score("time", result) == score
        assert log.delays  # the replay contract's raw material


class TestOptimizeLoop:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        """The acceptance property: candidate evaluation demonstrably
        runs through the executor — a warm second run of the same
        search touches only the on-disk cell cache."""
        base = check_world_spec("flooding", 10)

        def search():
            registry = MetricsRegistry()
            previous = set_global_registry(registry)
            try:
                opt = make_optimizer(
                    "cem", DelayVectorSpace(length=8), seed=6
                )
                ev = CellEvaluator(
                    serial_executor(tmp_path), base, "time"
                )
                outcome = optimize(
                    opt, ev, generations=3, population=6
                )
            finally:
                set_global_registry(previous)
            snap = registry.snapshot()["counters"]
            hits = snap.get(
                'repro_cellcache_fetch_total{outcome="hit"}', 0
            )
            misses = snap.get(
                'repro_cellcache_fetch_total{outcome="miss"}', 0
            )
            return outcome, hits, misses

        cold, cold_hits, cold_misses = search()
        warm, warm_hits, warm_misses = search()
        assert cold_misses > 0
        assert warm_hits > 0
        assert warm_misses == 0  # deterministic search, warm cache
        assert warm.best_score == cold.best_score
        assert warm.best_genome == cold.best_genome

    def test_metrics_and_telemetry(self, tmp_path):
        from repro.obs.recorder import JsonlRecorder

        base = check_world_spec("flooding", 8)
        registry = MetricsRegistry()
        previous = set_global_registry(registry)
        telemetry = tmp_path / "events.jsonl"
        try:
            recorder = JsonlRecorder(telemetry)
            opt = make_optimizer(
                "sa", DelayVectorSpace(length=4), seed=0
            )
            ev = CellEvaluator(serial_executor(tmp_path), base, "time")
            outcome = optimize(
                opt, ev, generations=2, population=4,
                recorder=recorder,
            )
            recorder.close()
        finally:
            set_global_registry(previous)
        assert outcome.generations == 2
        counters = registry.snapshot()["counters"]
        assert (
            counters['repro_opt_generations_total{optimizer="sa"}'] == 2
        )
        assert (
            counters['repro_opt_evaluations_total{optimizer="sa"}'] == 8
        )
        import json

        events = [
            json.loads(line)
            for line in telemetry.read_text().splitlines()
        ]
        gens = [e for e in events if e["kind"] == "opt_generation"]
        assert [e["generation"] for e in gens] == [0, 1]
        assert all(e["optimizer"] == "sa" for e in gens)

    def test_rejects_degenerate_budgets(self, tmp_path):
        from repro.errors import ReproError

        base = check_world_spec("flooding", 8)
        opt = make_optimizer("cem", DelayVectorSpace(length=4))
        ev = CellEvaluator(serial_executor(tmp_path), base, "time")
        with pytest.raises(ReproError):
            optimize(opt, ev, generations=0)
        with pytest.raises(ReproError):
            optimize(opt, ev, population=0)
