"""Adversary wake patterns at bulk scale.

PR 3 fixed the sync engine to round fractional wake times *up* (a wake
scheduled at t = 2.7 lands in round 3, never round 2).  The bulk engine
re-implements the schedule from scratch, so these tests pin the ceil'd
semantics down on both lanes at n ~ 1024: staggered, fractional, and
exact-integer-float patterns must produce identical per-vertex wake
rounds and identical completion rounds, sync vs bulk.
"""

from __future__ import annotations

import math

import pytest

from repro.core.flooding import Flooding
from repro.core.gossip import PushGossipWakeUp
from repro.core.star_broadcast import StarBroadcast
from repro.graphs.generators import connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, WakeSchedule
from repro.sim.runner import run_wakeup

pytestmark = pytest.mark.bulk

N = 1024

_CACHE = {}


def _graph():
    if "g" not in _CACHE:
        _CACHE["g"] = connected_erdos_renyi(N, 7.0 / (N - 1), seed=41)
    return _CACHE["g"]


def _patterns(verts):
    return {
        # Integer waves: one new wave every 3 rounds.
        "staggered-integer": WakeSchedule.staggered(
            [(3.0 * i, verts[8 * i : 8 * (i + 1)]) for i in range(8)]
        ),
        # Fractional waves: 2.7 -> round 3, 5.4 -> round 6, ...
        "staggered-fractional": WakeSchedule.staggered(
            [(2.7 * i, verts[8 * i : 8 * (i + 1)]) for i in range(8)]
        ),
        # Every scheduled vertex at its own fractional time.
        "per-vertex-fractional": WakeSchedule(
            {v: 0.31 * i for i, v in enumerate(verts[::16])}
        ),
        # Integer-valued floats must NOT be pushed a round later:
        # ceil(2.0) == 2.
        "integer-floats": WakeSchedule(
            {v: float(i) for i, v in enumerate(verts[:12])}
        ),
    }


ALGOS = {
    "flooding": Flooding,
    "push-gossip": lambda: PushGossipWakeUp(active_rounds=6),
    "star-broadcast": StarBroadcast,
}


@pytest.mark.parametrize("pattern", ["staggered-integer",
                                     "staggered-fractional",
                                     "per-vertex-fractional",
                                     "integer-floats"])
@pytest.mark.parametrize("algo", sorted(ALGOS))
def test_wake_pattern_parity(algo, pattern):
    graph = _graph()
    verts = list(graph.vertices())
    schedule = _patterns(verts)[pattern]
    setup = make_setup(graph, knowledge=Knowledge.KT1, seed=13)
    adv = Adversary(schedule)
    rs = run_wakeup(
        setup, ALGOS[algo](), adv, engine="sync", seed=13,
        require_all_awake=False,
    )
    rb = run_wakeup(
        setup, ALGOS[algo](), adv, engine="bulk", seed=13,
        require_all_awake=False,
    )
    assert rb.engine == "bulk"
    # Identical completion rounds...
    assert rb.time == rs.time
    assert rb.time_all_awake == rs.time_all_awake
    assert rb.metrics.events_processed == rs.metrics.events_processed
    # ...and identical per-vertex wake rounds.
    assert rb.wake_time == rs.wake_time


@pytest.mark.parametrize("t,expected", [(0.0, 0), (2.0, 2), (2.3, 3),
                                        (2.7, 3), (5.0, 5)])
def test_fractional_times_ceil_on_both_engines(t, expected):
    """An isolated vertex woken at time t wakes in round ceil(t) on
    both lanes (the PR-3 semantics, re-checked against math.ceil)."""
    graph = _graph()
    v = next(iter(graph.vertices()))
    setup = make_setup(graph, knowledge=Knowledge.KT1, seed=2)
    adv = Adversary(WakeSchedule({v: t}))
    assert expected == math.ceil(t)
    for engine in ("sync", "bulk"):
        r = run_wakeup(
            setup, Flooding(), adv, engine=engine, seed=2,
            require_all_awake=False,
        )
        assert r.wake_time[v] == float(expected), engine
