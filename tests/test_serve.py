"""Integration tests for the serve daemon (`repro.serve`).

The contract under test, matching docs/serving.md:

* **job identity** — specs canonicalize (defaults filled, keys
  dropped/sorted) so equivalent submissions share one content-addressed
  job id; invalid specs raise before admission;
* **concurrent clients** — N clients submitting overlapping warm/cold
  jobs all get complete, schema-valid event streams and consistent
  final summaries; duplicate submissions attach to the in-flight or
  completed job (the dedup counter ticks, nothing re-runs);
* **cell economy** — across overlapping jobs, each distinct cell is
  *executed* exactly once; later jobs replay it from the cell cache;
* **fault isolation** — a timed-out cell, a hung job (wall budget), and
  a worker killed mid-cell each produce a structured failed/timeout job
  while the daemon keeps serving subsequent requests;
* **admission** — invalid specs, oversized cell budgets, and a full
  queue are structured rejections, never hangs or daemon deaths.

Each server binds a unix socket under the test's tmp dir with private
cache/topology stores, so tests are hermetic and parallel-safe.
"""

from __future__ import annotations

import importlib.util
import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.core.base import WakeUpAlgorithm
from repro.core.registry import register
from repro.obs import validate_event
from repro.serve import (
    ServeClient,
    ServeConfig,
    SweepServer,
    canonical_spec,
    count_cells,
    job_id,
    validate_job,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_telemetry_for_serve_tests",
        REPO_ROOT / "scripts" / "check_telemetry.py",
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


CHECKER = _load_checker()


# ----------------------------------------------------------------------
# Fault-injection algorithms (registered for real, so job validation
# admits them; the executor pool forks, so workers inherit these).
# ----------------------------------------------------------------------
class HangAlgo(WakeUpAlgorithm):
    """Burns wall-clock in small sleeps so a watchdog's async exception
    can land at a bytecode boundary."""

    name = "test-serve-hang"
    congest_safe = True

    def build_nodes(self, setup):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            time.sleep(0.005)
        raise AssertionError("no budget ever fired")

    def make_node(self, vertex, setup):  # pragma: no cover
        raise AssertionError("unreachable")


class KillAlgo(WakeUpAlgorithm):
    """Takes its worker process down mid-cell (simulates a segfault)."""

    name = "test-serve-kill"
    congest_safe = True

    def build_nodes(self, setup):
        os.kill(os.getpid(), signal.SIGKILL)

    def make_node(self, vertex, setup):  # pragma: no cover
        raise AssertionError("unreachable")


register("test-serve-hang", HangAlgo)
register("test-serve-kill", KillAlgo)


def sweep_spec(algorithm="flooding", sizes=(12, 16), **kw):
    spec = {
        "kind": "sweep",
        "algorithm": algorithm,
        "sizes": list(sizes),
        "trials": 1,
        "degree": 3.0,
    }
    spec.update(kw)
    return spec


def start_server(tmp_path, name="sv", **overrides):
    cfg = dict(
        socket_path=str(tmp_path / f"{name}.sock"),
        max_queue=8,
        max_cells=64,
        job_timeout=60.0,
        cell_timeout=20.0,
        workers=0,
        cache_dir=str(tmp_path / f"{name}-cache"),
        topology_dir=str(tmp_path / f"{name}-topo"),
    )
    cfg.update(overrides)
    server = SweepServer(ServeConfig(**cfg))
    server.start()
    client = ServeClient(cfg["socket_path"], timeout=60.0)
    assert client.wait_ready(10.0)
    return server, client


def counter_value(server, status):
    counters = server.metrics.snapshot()["counters"]
    return counters.get(
        f'repro_serve_jobs_total{{status="{status}"}}', 0
    )


# ----------------------------------------------------------------------
# Job specs (pure functions, no daemon)
# ----------------------------------------------------------------------
class TestJobSpecs:
    def test_canonicalization_is_spelling_invariant(self):
        terse = {"kind": "sweep", "algorithm": "flooding"}
        spelled = {
            "kind": "sweep",
            "algorithm": "flooding",
            "sizes": [128, 64],
            "trials": 2,
            "seed": 0,
            "degree": 6.0,
            "ignored_extra_key": "dropped",
        }
        assert canonical_spec(terse) == canonical_spec(spelled)
        assert job_id(terse) == job_id(spelled)
        assert canonical_spec(terse)["sizes"] == [64, 128]

    def test_distinct_specs_get_distinct_ids(self):
        a = sweep_spec(sizes=[12, 16])
        b = sweep_spec(sizes=[12, 16, 20])
        assert job_id(a) != job_id(b)

    def test_validate_rejects_garbage(self):
        assert validate_job("not a dict")
        assert validate_job({"kind": "nope"})
        assert validate_job({"kind": "sweep", "algorithm": "missing"})
        assert validate_job(sweep_spec(sizes=[]))
        assert validate_job(sweep_spec(trials=0))
        with pytest.raises(ValueError):
            canonical_spec({"kind": "sweep", "algorithm": "missing"})

    def test_count_cells(self):
        assert count_cells(sweep_spec(sizes=[12, 16], trials=3)) == 6
        assert count_cells(
            {"kind": "check", "algorithm": "flooding"}
        ) == 1


# ----------------------------------------------------------------------
# Concurrent clients against one daemon
# ----------------------------------------------------------------------
class TestConcurrentClients:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve")
        server, client = start_server(tmp)
        yield server, client
        server.stop()

    def _run_many(self, client, specs):
        """Each spec on its own client thread; returns the (final,
        events) pairs in submission order."""
        results = [None] * len(specs)

        def work(i, spec):
            worker = ServeClient(client.socket_path, timeout=120.0)
            results[i] = worker.run_job(spec)

        threads = [
            threading.Thread(target=work, args=(i, s), daemon=True)
            for i, s in enumerate(specs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert all(r is not None for r in results), "a client hung"
        return results

    def test_identical_submissions_share_one_execution(self, served):
        server, client = served
        before = counter_value(server, "deduped")
        spec = sweep_spec(sizes=[10, 14], seed=7)
        results = self._run_many(client, [spec] * 4)
        ids = {final["job"]["id"] for final, _ in results}
        assert len(ids) == 1
        for final, events in results:
            assert final["job"]["state"] == "done"
            # every watcher saw the full stream, however late it joined
            kinds = [e["kind"] for e in events]
            assert kinds.count("job_start") == 1
            assert kinds.count("job_end") == 1
            assert kinds.count("cell_start") == 2
        assert counter_value(server, "deduped") - before == 3
        # one execution: the job ran its two cells exactly once
        stats = results[0][0]["job"]["result"]["stats"]
        assert stats["executed"] == 2

    def test_overlapping_jobs_execute_each_cell_once(self, served):
        _server, client = served
        cold = sweep_spec(sizes=[18, 22], seed=11)
        warm = sweep_spec(sizes=[18, 22, 26], seed=11)
        results = self._run_many(client, [cold, warm])
        finals = [final["job"] for final, _ in results]
        assert {f["state"] for f in finals} == {"done"}
        executed = sum(
            f["result"]["stats"]["executed"] for f in finals
        )
        cached = sum(f["result"]["stats"]["cached"] for f in finals)
        # 3 distinct cells across both jobs: each executed exactly
        # once, the overlap replayed from the cell cache.
        assert executed == 3
        assert cached == 2

    def test_completed_job_resubmission_is_deduped(self, served):
        server, client = served
        spec = sweep_spec(sizes=[10, 14], seed=7)  # warm from earlier
        before = counter_value(server, "deduped")
        final, events = ServeClient(
            client.socket_path, timeout=60.0
        ).run_job(spec)
        assert final["job"]["state"] == "done"
        assert counter_value(server, "deduped") - before == 1
        # terminal job: the stream is pure backlog replay, still whole
        assert [e["kind"] for e in events].count("job_end") == 1

    def test_streams_validate_against_obs_schema(self, served):
        _server, client = served
        final, events = client.run_job(sweep_spec(sizes=[20], seed=3))
        assert final["job"]["state"] == "done"
        for e in events:
            assert validate_event(e) == [], e
        lines = [json.dumps(e, sort_keys=True) for e in events]
        errors, summary = CHECKER.check_stream(lines)
        assert errors == []
        assert summary["census"]["job_queued"] == 1
        assert summary["census"]["job_end"] == 1

    def test_jobs_status_and_stats_ops(self, served):
        _server, client = served
        final, _ = client.run_job(sweep_spec(sizes=[10, 14], seed=7))
        jid = final["job"]["id"]
        listed = client.jobs()
        assert any(j["id"] == jid for j in listed)
        assert all("result" not in j for j in listed)  # summaries only
        status = client.status(jid)
        assert status["ok"] and status["job"]["id"] == jid
        assert status["job"]["clients"] >= 1
        missing = client.status("jnope")
        assert missing["ok"] is False
        stats = client.stats()
        assert stats["ok"]
        assert stats["jobs_by_state"].get("done", 0) >= 1
        assert "repro_serve_jobs_total" in str(stats["metrics"])


# ----------------------------------------------------------------------
# Fault isolation: structured failures, daemon survives
# ----------------------------------------------------------------------
class TestFaultIsolation:
    def test_timed_out_cell_is_structured_failed_job(self, tmp_path):
        server, client = start_server(tmp_path, job_timeout=60.0)
        try:
            final, events = client.run_job(
                sweep_spec("test-serve-hang", sizes=[12],
                           cell_timeout=0.5)
            )
            job = final["job"]
            assert job["state"] == "failed"
            assert "did not complete" in job["error"]
            assert "timeout" in job["error"]
            failed = job["result"]["failed_cells"]
            assert [c["status"] for c in failed] == ["timeout"]
            kinds = [e["kind"] for e in events]
            assert "cell_timeout" in kinds
            assert kinds.count("job_end") == 1
            # the daemon is still serving
            after, _ = client.run_job(sweep_spec(sizes=[12]))
            assert after["job"]["state"] == "done"
        finally:
            server.stop()

    def test_job_wall_budget_times_out_job(self, tmp_path):
        server, client = start_server(
            tmp_path, job_timeout=1.0, cell_timeout=None
        )
        try:
            final, events = client.run_job(
                sweep_spec("test-serve-hang", sizes=[12])
            )
            job = final["job"]
            assert job["state"] == "timeout"
            assert "budget" in job["error"]
            assert [e["kind"] for e in events].count("job_end") == 1
            after, _ = client.run_job(sweep_spec(sizes=[12]))
            assert after["job"]["state"] == "done"
        finally:
            server.stop()

    def test_killed_worker_is_structured_failed_job(self, tmp_path):
        # workers=2: cells must run in worker *processes* (0/1 mean
        # in-process) so the SIGKILL lands on a worker, not the daemon.
        server, client = start_server(tmp_path, workers=2)
        try:
            final, _events = client.run_job(
                sweep_spec("test-serve-kill", sizes=[12])
            )
            job = final["job"]
            assert job["state"] == "failed"
            assert "crashed" in job["error"]
            failed = job["result"]["failed_cells"]
            assert [c["status"] for c in failed] == ["crashed"]
            assert "worker process died" in failed[0]["error"]
            # daemon alive and able to run real work afterwards
            after, _ = client.run_job(sweep_spec(sizes=[12]))
            assert after["job"]["state"] == "done"
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_invalid_and_oversized_specs_are_rejected(self, tmp_path):
        server, client = start_server(tmp_path, max_cells=4)
        try:
            bad = client.submit({"kind": "nope"})
            assert bad["ok"] is False and bad["rejected"]
            assert bad["reason"].startswith("invalid:")

            fat = client.submit(sweep_spec(sizes=[8, 12, 16], trials=9))
            assert fat["ok"] is False and fat["rejected"]
            assert "cell budget" in fat["reason"]

            # watch-mode rejection is the same structured line
            final, events = client.run_job({"kind": "nope"})
            assert final["ok"] is False and events == []

            assert counter_value(server, "rejected") == 3
            # rejected jobs are not remembered
            assert client.jobs() == []
        finally:
            server.stop()

    def test_full_queue_rejects_structurally(self, tmp_path):
        server, client = start_server(
            tmp_path, max_queue=1, job_timeout=30.0, cell_timeout=2.0
        )
        try:
            # occupy the runner...
            running = client.submit(
                sweep_spec("test-serve-hang", sizes=[12],
                           cell_timeout=2.0)
            )
            assert running["ok"]
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if client.status(running["job"])["job"]["state"] == "running":
                    break
                time.sleep(0.02)
            # ...fill the single queue slot...
            queued = client.submit(sweep_spec(sizes=[10], seed=1))
            assert queued["ok"]
            # ...and the next distinct job bounces.
            bounced = client.submit(sweep_spec(sizes=[10], seed=2))
            assert bounced["ok"] is False and bounced["rejected"]
            assert "queue full" in bounced["reason"]
            # a duplicate of a queued job still attaches, full or not
            dup = client.submit(sweep_spec(sizes=[10], seed=1))
            assert dup["ok"] and dup["deduped"]
        finally:
            server.stop()
