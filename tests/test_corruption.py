"""Tests for the advice-corruption experiments."""

import random

import pytest

from repro.advice.bits import Bits
from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.flooding import Flooding
from repro.errors import ReproError
from repro.experiments.corruption import (
    corruption_curve,
    corruption_trial,
    flip_bits,
)
from repro.graphs.generators import connected_erdos_renyi, path_graph
from repro.models.knowledge import Knowledge, make_setup


class TestFlipBits:
    def test_zero_flips_identity(self):
        advice = {"a": Bits([1, 0, 1])}
        out = flip_bits(advice, 0, random.Random(1))
        assert out["a"] == advice["a"]

    def test_flip_count_parity(self):
        """An odd number of flips over a single string changes it."""
        advice = {"a": Bits([0] * 16)}
        out = flip_bits(advice, 3, random.Random(2))
        diff = sum(x != y for x, y in zip(advice["a"], out["a"]))
        assert diff % 2 == 1  # flips can collide pairwise, parity holds
        assert 1 <= diff <= 3

    def test_empty_advice_untouched(self):
        advice = {"a": Bits(), "b": Bits([1])}
        out = flip_bits(advice, 5, random.Random(3))
        assert out["a"] == Bits()
        assert len(out["b"]) == 1

    def test_all_empty(self):
        advice = {"a": Bits()}
        assert flip_bits(advice, 10, random.Random(1)) == {"a": Bits()}


class TestTrials:
    def test_zero_flips_is_ok(self):
        g = connected_erdos_renyi(30, 0.15, seed=1)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        out = corruption_trial(setup, Fip06TreeAdvice(), [0], flips=0, seed=2)
        assert out == "ok"

    def test_requires_advising_scheme(self):
        g = path_graph(5)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        with pytest.raises(ReproError):
            corruption_trial(setup, Flooding(), [0], flips=1)

    def test_heavy_corruption_usually_fails(self):
        g = connected_erdos_renyi(40, 0.1, seed=3)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        outcomes = [
            corruption_trial(
                setup, ChildEncodingAdvice(), [0], flips=60, seed=s
            )
            for s in range(10)
        ]
        assert sum(o != "ok" for o in outcomes) >= 6

    def test_outcome_vocabulary(self):
        g = connected_erdos_renyi(25, 0.15, seed=5)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        for s in range(6):
            out = corruption_trial(
                setup, ChildEncodingAdvice(), [0], flips=8, seed=s
            )
            assert out in ("ok", "asleep", "error")


class TestCurve:
    def test_failure_rate_monotone_ish(self):
        g = connected_erdos_renyi(35, 0.12, seed=7)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        points = corruption_curve(
            setup, ChildEncodingAdvice, [0],
            flip_counts=[0, 4, 40], trials=8, seed=3,
        )
        rates = [p.failure_rate for p in points]
        assert rates[0] == 0.0
        assert rates[2] >= rates[1]
        assert rates[2] > 0.5

    def test_point_accounting(self):
        g = connected_erdos_renyi(25, 0.15, seed=9)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        (point,) = corruption_curve(
            setup, Fip06TreeAdvice, [0], flip_counts=[2], trials=5, seed=1
        )
        assert point.ok + point.asleep + point.error == point.trials
