"""Genome protocol and space laws (repro.opt.genomes)."""

import random

import pytest

from repro.errors import ReproError
from repro.opt.genomes import (
    DEFAULT_LO,
    ChoicePrefixGenome,
    ChoicePrefixSpace,
    DelayVectorGenome,
    DelayVectorSpace,
    genome_from_dict,
)


class TestGenomeProtocol:
    def test_delay_vector_round_trip(self):
        g = DelayVectorGenome((0.25, 1.0, 0.5))
        back = genome_from_dict(g.as_dict())
        assert back == g
        assert back.key() == g.key()

    def test_choice_prefix_round_trip(self):
        g = ChoicePrefixGenome((0, 2, 1), laziness=1.0)
        back = genome_from_dict(g.as_dict())
        assert back == g
        assert back.key() == g.key()

    def test_key_is_content_addressed(self):
        a = DelayVectorGenome((0.25, 0.5))
        b = DelayVectorGenome((0.25, 0.5))
        c = DelayVectorGenome((0.5, 0.25))
        assert a.key() == b.key()
        assert a.key() != c.key()
        # Kinds never collide even on similar payloads.
        assert (
            ChoicePrefixGenome((1, 2)).key()
            != DelayVectorGenome((1.0, 1.0)).key()
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            genome_from_dict({"kind": "nope"})

    def test_cell_overrides_shapes(self):
        dv = DelayVectorGenome((0.5,)).cell_overrides()
        assert dv["delay"]["kind"] == "vector"
        assert dv["controller"] is None
        cp = ChoicePrefixGenome((0, 1), laziness=0.5).cell_overrides()
        assert cp["delay"] == {"kind": "unit"}
        assert cp["controller"]["kind"] == "replay"
        assert cp["controller"]["laziness"] == 0.5

    def test_controlled_flags(self):
        assert not DelayVectorGenome((0.5,)).controlled
        assert ChoicePrefixGenome((0,)).controlled


class TestDelayVectorSpace:
    def test_sample_respects_bounds(self):
        space = DelayVectorSpace(length=16)
        rng = random.Random(0)
        for _ in range(20):
            g = space.sample(rng)
            assert len(g.values) == 16
            assert all(DEFAULT_LO <= v <= 1.0 for v in g.values)

    def test_mutate_and_crossover_stay_in_bounds(self):
        space = DelayVectorSpace(length=8)
        rng = random.Random(1)
        a, b = space.sample(rng), space.sample(rng)
        for _ in range(50):
            a = space.mutate(a, rng)
            assert all(space.lo <= v <= 1.0 for v in a.values)
        child = space.crossover(a, b, rng)
        assert all(v in a.values + b.values for v in child.values)

    def test_fit_sample_round_trip(self):
        space = DelayVectorSpace(length=4)
        rng = random.Random(2)
        elites = [space.sample(rng) for _ in range(6)]
        params = space.fit(elites)
        assert len(params) == 4
        for mean, std in params:
            assert std >= space.min_std
        g = space.sample_fit(params, rng)
        assert all(space.lo <= v <= 1.0 for v in g.values)

    def test_determinism_under_seed(self):
        space = DelayVectorSpace(length=8)
        assert (
            space.sample(random.Random(7))
            == space.sample(random.Random(7))
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            DelayVectorSpace(length=0)
        with pytest.raises(ReproError):
            DelayVectorSpace(lo=1.5)


class TestChoicePrefixSpace:
    def test_sample_respects_caps(self):
        space = ChoicePrefixSpace(horizon=10, branch_cap=3, laziness=1.0)
        rng = random.Random(0)
        g = space.sample(rng)
        assert len(g.choices) == 10
        assert all(0 <= c < 3 for c in g.choices)
        assert g.laziness == 1.0

    def test_mutate_and_crossover_preserve_shape(self):
        space = ChoicePrefixSpace(horizon=8, branch_cap=4)
        rng = random.Random(3)
        a, b = space.sample(rng), space.sample(rng)
        m = space.mutate(a, rng)
        assert len(m.choices) == 8
        assert m.laziness == a.laziness
        child = space.crossover(a, b, rng)
        assert len(child.choices) == 8

    def test_fit_is_a_distribution(self):
        space = ChoicePrefixSpace(horizon=5, branch_cap=3)
        rng = random.Random(4)
        params = space.fit([space.sample(rng) for _ in range(8)])
        assert len(params) == 5
        for probs in params:
            assert len(probs) == 3
            assert abs(sum(probs) - 1.0) < 1e-9
            assert all(p > 0 for p in probs)  # Laplace smoothing
        g = space.sample_fit(params, rng)
        assert all(0 <= c < 3 for c in g.choices)

    def test_validation(self):
        with pytest.raises(ReproError):
            ChoicePrefixSpace(horizon=0)
        with pytest.raises(ReproError):
            ChoicePrefixSpace(branch_cap=0)
