"""Execution backends (`repro.experiments.backends`).

The backend contract PR-9 introduced:

* **conformance** — serial, fork-pool, and work-stealing backends
  produce bit-identical sweep rows at any worker count;
* **scheduling is plumbing** — `plan_batches` enforces the MIN_CHUNK
  IPC floor, `batch_weight` orders largest-`n` first, and neither may
  reorder the executor's *output* (outcomes stay in input order);
* **fault isolation** — a worker SIGKILL under the stealing backend
  becomes a structured crashed-cell record while every other cell
  completes;
* **migration** — legacy (pre-salt-vector) cache envelopes are
  classified stale, re-executed transparently, and produce identical
  rows; `purge --stale` removes exactly them.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.experiments.backends import (
    BACKENDS,
    MIN_CHUNK,
    batch_weight,
    plan_batches,
)
from repro.experiments.parallel import (
    CellSpec,
    ParallelSweepExecutor,
    cell_cache_report,
    classify_cell_envelope,
)
from repro.experiments.sweeps import sweep_cells

HERE = "tests.test_backends"
GOOD = "flooding"


def _cells(trials: int = 2):
    return sweep_cells(
        GOOD,
        {"kind": "er_single_wake", "avg_degree": 4.0, "seed": 3},
        sizes=[16, 24],
        engine="async",
        knowledge="KT0",
        bandwidth="CONGEST",
        trials=trials,
        seed=3,
        delay={"kind": "uniform", "seed": 3},
    )


def _fault_cell(algorithm, n=12, **kw):
    return CellSpec(
        algorithm=algorithm,
        n=n,
        seed=1,
        engine="async",
        knowledge="KT0",
        bandwidth="CONGEST",
        workload={"kind": "er_single_wake", "avg_degree": 3.0, "seed": 1},
        **kw,
    )


# ----------------------------------------------------------------------
# Batch planning
# ----------------------------------------------------------------------
class TestPlanBatches:
    MISSES = [(i, f"spec{i}", f"key{i}") for i in range(8)]

    def test_empty(self):
        assert plan_batches([], 4) == []

    def test_explicit_chunk_size_wins(self):
        batches = plan_batches(self.MISSES, 4, chunk_size=1)
        assert [len(b) for b in batches] == [1] * 8

    def test_small_sweep_floor_caps_at_fair_share(self):
        # 8 misses / 4 workers: the MIN_CHUNK floor would starve two
        # workers, so it caps at ceil(8/4)=2 — every worker gets work.
        batches = plan_batches(self.MISSES, 4)
        assert [len(b) for b in batches] == [2, 2, 2, 2]

    def test_min_chunk_floor_applies(self):
        # 16 misses / 4 workers: balanced chunk would be 1 (a future
        # per cell); the floor lifts it to MIN_CHUNK.
        misses = [(i, None, str(i)) for i in range(16)]
        batches = plan_batches(misses, 4)
        assert all(len(b) == MIN_CHUNK for b in batches)

    def test_large_sweep_targets_four_batches_per_worker(self):
        misses = [(i, None, str(i)) for i in range(96)]
        batches = plan_batches(misses, 2)
        assert [len(b) for b in batches] == [12] * 8

    def test_batches_are_contiguous_slices(self):
        batches = plan_batches(self.MISSES, 4)
        assert [m for b in batches for m in b] == self.MISSES


class TestBatchWeight:
    def test_largest_cell_dominates(self):
        small = [_fault_cell(GOOD, n=16), _fault_cell(GOOD, n=16, trial=1)]
        big = [_fault_cell(GOOD, n=512)]
        assert batch_weight(big) > batch_weight(small)

    def test_ties_break_toward_more_cells(self):
        one = [_fault_cell(GOOD, n=32)]
        two = [_fault_cell(GOOD, n=32), _fault_cell(GOOD, n=32, trial=1)]
        assert batch_weight(two) > batch_weight(one)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_known_backends(self):
        assert set(BACKENDS) == {"serial", "fork", "steal"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown execution backend"):
            ParallelSweepExecutor(backend="threads")

    def test_sweep_start_event_names_backend(self):
        from repro.obs.recorder import MemoryRecorder

        rec = MemoryRecorder()
        ParallelSweepExecutor(
            workers=0, use_cache=False, backend="serial", recorder=rec
        ).run(_cells(trials=1))
        (start,) = rec.of_kind("sweep_start")
        assert start["backend"] == "serial"


# ----------------------------------------------------------------------
# Cross-backend conformance: rows must be bit-identical
# ----------------------------------------------------------------------
class TestConformance:
    def test_rows_identical_across_backends_and_workers(self):
        cells = _cells()
        baseline = [
            o.record()
            for o in ParallelSweepExecutor(
                workers=0, use_cache=False, backend="serial"
            ).run(cells)
        ]
        for backend in ("serial", "fork", "steal"):
            for workers in (0, 4):
                out = ParallelSweepExecutor(
                    workers=workers, use_cache=False, backend=backend
                ).run(cells)
                rows = [o.record() for o in out]
                assert rows == baseline, (
                    f"rows diverged under backend={backend} "
                    f"workers={workers}"
                )

    def test_outcomes_stay_in_input_order_despite_lpt(self):
        # Stealing runs the largest batch first; outcomes must still
        # come back in submission order.
        cells = [
            _fault_cell(GOOD, n=12),
            _fault_cell(GOOD, n=48),
            _fault_cell(GOOD, n=12, trial=1),
        ]
        out = ParallelSweepExecutor(
            workers=2, use_cache=False, backend="steal", chunk_size=1
        ).run(cells)
        assert [(o.spec.n, o.spec.trial) for o in out] == [
            (12, 0), (48, 0), (12, 1)
        ]
        assert all(o.ok for o in out)


# ----------------------------------------------------------------------
# Fault isolation under the stealing backend
# ----------------------------------------------------------------------
class TestStealFaults:
    def test_worker_kill_is_isolated_and_retried(self):
        cells = [
            _fault_cell(GOOD),
            _fault_cell(f"{HERE}:KillerAlgo"),
            _fault_cell(GOOD, trial=1),
            _fault_cell(GOOD, trial=2),
        ]
        out = ParallelSweepExecutor(
            workers=2, use_cache=False, backend="steal", retries=1
        ).run(cells)
        by_algo = {o.spec.algorithm: o for o in out}
        crashed = by_algo[f"{HERE}:KillerAlgo"]
        assert crashed.status == "crashed"
        good = [o for o in out if o.spec.algorithm == GOOD]
        assert len(good) == 3 and all(o.ok for o in good)

    def test_wakeup_failure_is_structured_not_crash(self):
        out = ParallelSweepExecutor(
            workers=2, use_cache=False, backend="steal"
        ).run([_fault_cell(GOOD), _fault_cell(f"{HERE}:SilentAlgo")])
        assert [o.status for o in out] == ["ok", "failed"]
        assert "never woke up" in out[1].error


# KillerAlgo/SilentAlgo live in tests.test_parallel_executor; re-export
# them under this module's dotted path so fork workers resolve them.
from tests.test_parallel_executor import KillerAlgo, SilentAlgo  # noqa: E402,F401


# ----------------------------------------------------------------------
# Legacy envelope migration
# ----------------------------------------------------------------------
class TestEnvelopeMigration:
    def _executor(self, tmp_path, **kw):
        return ParallelSweepExecutor(
            workers=0,
            cache_dir=tmp_path / "cells",
            topology_dir=tmp_path / "topo",
            **kw,
        )

    def _downgrade(self, cache_dir):
        """Rewrite every envelope to the pre-PR-9 v1 shape (global
        CODE_SALT baked into the key, no salt vector)."""
        paths = list(cache_dir.rglob("*.json"))
        for path in paths:
            data = json.loads(path.read_text())
            path.write_text(
                json.dumps(
                    {
                        "key": data["key"],
                        "salt": "repro-cells-v1",
                        "payload": data["payload"],
                    }
                )
            )
        return paths

    def test_legacy_envelopes_are_stale_and_reexecuted(self, tmp_path):
        cells = _cells(trials=1)
        cold = self._executor(tmp_path)
        rows = [o.record() for o in cold.run(cells)]
        assert cold.stats["executed"] == len(cells)

        paths = self._downgrade(cold.cache_dir)
        assert paths, "cold run cached nothing"
        for path in paths:
            assert classify_cell_envelope(path) == ("stale", "legacy")
        report = cell_cache_report(cold.cache_dir)
        assert report["live"] == 0
        assert report["stale_by"] == {"legacy": len(paths)}

        # A legacy envelope is a miss, not an error: cells re-execute
        # and the rows come out identical.
        warm = self._executor(tmp_path)
        rows_again = [o.record() for o in warm.run(cells)]
        assert warm.stats["executed"] == len(cells)
        assert rows_again == rows

        # ...and the rewrite healed the cache.
        healed = cell_cache_report(cold.cache_dir)
        assert healed["live"] == len(paths)
        assert healed["stale"] == 0

    def test_purge_stale_keeps_live_entries(self, tmp_path):
        cells = _cells(trials=1)
        ex = self._executor(tmp_path)
        ex.run(cells)
        # Downgrade one envelope, leave the rest live.
        victim = next(iter(ex.cache_dir.rglob("*.json")))
        data = json.loads(victim.read_text())
        victim.write_text(
            json.dumps({"key": data["key"], "payload": data["payload"]})
        )
        assert ex.purge_cache(stale_only=True) == 1
        report = cell_cache_report(ex.cache_dir)
        assert report["stale"] == 0
        assert report["live"] == len(cells) - 1

    def test_mismatched_salt_names_component(self, tmp_path):
        cells = _cells(trials=1)
        ex = self._executor(tmp_path)
        ex.run(cells)
        victim = next(iter(ex.cache_dir.rglob("*.json")))
        data = json.loads(victim.read_text())
        data["salts"]["engine"] = "0" * 16
        data["salts"]["algorithms"] = "0" * 16
        victim.write_text(json.dumps(data))
        assert classify_cell_envelope(victim) == (
            "stale",
            "algorithms+engine",
        )
