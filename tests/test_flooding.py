"""Tests for the flooding baseline."""

import pytest

from repro.core.flooding import EchoFlooding, Flooding
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    grid_graph,
    path_graph,
)
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@pytest.mark.parametrize("engine", ["async", "sync"])
class TestFlooding:
    def test_wakes_everyone(self, engine):
        g = connected_erdos_renyi(40, 0.1, seed=1)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=2)
        r = run_wakeup(
            setup, Flooding(),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
            engine=engine,
        )
        assert r.all_awake

    def test_message_complexity_exactly_2m(self, engine):
        g = grid_graph(6, 6)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=2)
        r = run_wakeup(
            setup, Flooding(),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
            engine=engine,
        )
        assert r.messages == 2 * g.num_edges

    def test_time_equals_awake_distance(self, engine):
        g = grid_graph(5, 8)
        awake = [0, 39]
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=2)
        r = run_wakeup(
            setup, Flooding(),
            Adversary(WakeSchedule.all_at_once(awake), UnitDelay()),
            engine=engine,
        )
        assert r.time_all_awake == awake_distance(g, awake)

    def test_wake_times_equal_distances(self, engine):
        """Flooding realizes dist(A0, v) exactly under unit delays."""
        from repro.graphs.traversal import multi_source_bfs

        g = connected_erdos_renyi(30, 0.12, seed=5)
        awake = [0, 7]
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=2)
        r = run_wakeup(
            setup, Flooding(),
            Adversary(WakeSchedule.all_at_once(awake), UnitDelay()),
            engine=engine,
        )
        dist = multi_source_bfs(g, awake)
        for v in g.vertices():
            assert r.wake_time[v] == pytest.approx(float(dist[v]))


def test_echo_flooding_adds_one_ack_per_receiving_node():
    # Every node that ever receives a wake message acks exactly once;
    # on a path flooded from one end that is every node (including the
    # origin, which hears back from its neighbor).
    g = path_graph(10)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
    adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
    plain = run_wakeup(setup, Flooding(), adversary, engine="async")
    echo = run_wakeup(setup, EchoFlooding(), adversary, engine="async")
    assert echo.messages == plain.messages + g.num_vertices


def test_flooding_on_complete_graph_is_quadratic():
    g = complete_graph(20)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
    r = run_wakeup(
        setup, Flooding(),
        Adversary(WakeSchedule.singleton(0), UnitDelay()),
        engine="async",
    )
    assert r.messages == 20 * 19


def test_flooding_congest_safe():
    g = path_graph(5)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    r = run_wakeup(
        setup, Flooding(),
        Adversary(WakeSchedule.singleton(0), UnitDelay()),
        engine="async",
    )
    assert r.max_message_bits <= setup.bandwidth.cap_bits
