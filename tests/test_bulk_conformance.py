"""Cross-engine metric-equivalence conformance suite.

The bulk frontier engine (:mod:`repro.sim.bulk`) is only trusted
because of this file: for every supported algorithm, the sync engine
and the bulk engine must agree **exactly** — not approximately — on
every aggregate the repo reports:

* completion time (``time`` = round complexity, ``time_all_awake``),
* total messages, total bits, ``max_message_bits``,
* the per-round message histogram,
* per-vertex wake times and causes, ``first_wake`` / ``last_activity``,
* ``events_processed`` (the number of executed rounds),
* success (``all_awake``) and the exact ``asleep`` set on failures.

The matrix covers the three frontier algorithms x n in {16, 256, 4096}
x at least three adversarial wake patterns (simultaneous, singleton,
staggered waves with fractional times, fractional spread), plus
hypothesis property tests over random connected graphs and random
schedules.

**Contract boundary (deliberate, documented):** the bulk lane produces
no per-message trace and no per-node / per-edge message Counters —
those are exactly the collections :meth:`Metrics.compact` drops at
process boundaries, so nothing the sweep/cache/report stack consumes is
lost.  Requesting a trace or arming a drop strategy silently routes the
run to the per-message sync engine instead; the tests at the bottom pin
that fallback behaviour down.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flooding import EchoFlooding, Flooding
from repro.core.gossip import PushGossipWakeUp
from repro.core.star_broadcast import StarBroadcast
from repro.graphs.generators import connected_erdos_renyi, star_graph
from repro.graphs.graph import Graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, WakeSchedule
from repro.sim.bulk import HAS_BULK, BulkUnavailable, require_bulk
from repro.sim.faults import BernoulliDrops, FaultyAdversary
from repro.sim.runner import run_wakeup
from repro.sim.trace import Trace

pytestmark = pytest.mark.bulk

# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------

SIZES = (16, 256, 4096)

ALGORITHMS = {
    # Small gossip budget: conformance wants every code path, not the
    # w.h.p. completion the default 8 * n_hat budget buys.
    "flooding": Flooding,
    "push-gossip": lambda: PushGossipWakeUp(active_rounds=10),
    "star-broadcast": StarBroadcast,
}


def _wake_patterns(verts):
    """Named adversarial wake patterns over a vertex list (>= 3, per
    the acceptance criteria; fractional times exercise the ceil'd
    sync-round semantics)."""
    k = max(1, len(verts) // 4)
    return {
        "singleton": WakeSchedule.singleton(verts[0]),
        "simultaneous": WakeSchedule.all_at_once(verts),
        "staggered-fractional": WakeSchedule.staggered(
            [
                (0.0, verts[:2]),
                (1.5, verts[2 : 2 + k]),
                (3.25, verts[2 + k : 2 + 2 * k]),
            ]
        ),
        "fractional-spread": WakeSchedule(
            {v: 0.7 * i for i, v in enumerate(verts[::4])}
        ),
    }


_GRAPHS = {}


def _graph(n):
    if n not in _GRAPHS:
        _GRAPHS[n] = connected_erdos_renyi(
            n, 6.0 / max(1, n - 1), seed=97 + n
        )
    return _GRAPHS[n]


def run_both(algo_factory, graph, schedule, seed=3, require=False):
    """One sync run (with a trace, for the histogram) and one bulk run
    on identical inputs; returns (sync_result, bulk_result, histograms).
    """
    setup = make_setup(graph, knowledge=Knowledge.KT1, seed=seed)
    adv = Adversary(schedule)
    trace = Trace()
    rs = run_wakeup(
        setup, algo_factory(), adv, engine="sync", seed=seed,
        require_all_awake=require, trace=trace,
    )
    rb = run_wakeup(
        setup, algo_factory(), adv, engine="bulk", seed=seed,
        require_all_awake=require,
    )
    sync_hist = Counter()
    for ev in trace.events:
        if ev.kind == "send":
            sync_hist[int(ev.time)] += 1
    bulk_hist = {
        r: c for r, c in enumerate(rb.metrics.round_messages) if c
    }
    return rs, rb, (dict(sync_hist), bulk_hist)


def assert_equivalent(rs, rb, hists):
    sync_hist, bulk_hist = hists
    assert rb.engine == "bulk"  # no silent fallback in the matrix
    assert rb.messages == rs.messages
    assert rb.bits == rs.bits
    assert rb.max_message_bits == rs.max_message_bits
    assert rb.time == rs.time
    assert rb.time_all_awake == rs.time_all_awake
    assert rb.all_awake == rs.all_awake
    assert rb.asleep == rs.asleep
    assert rb.wake_time == rs.wake_time
    assert rb.metrics.first_wake == rs.metrics.first_wake
    assert rb.metrics.last_activity == rs.metrics.last_activity
    assert rb.metrics.events_processed == rs.metrics.events_processed
    assert (
        rb.metrics.wake_cause_counts() == rs.metrics.wake_cause_counts()
    )
    assert rb.metrics.wake_cause == rs.metrics.wake_cause
    assert bulk_hist == sync_hist


@pytest.mark.parametrize("pattern", ["singleton", "simultaneous",
                                     "staggered-fractional",
                                     "fractional-spread"])
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("n", SIZES)
def test_matrix_sync_bulk_agree(algo, n, pattern):
    graph = _graph(n)
    verts = list(graph.vertices())
    schedule = _wake_patterns(verts)[pattern]
    rs, rb, hists = run_both(ALGORITHMS[algo], graph, schedule)
    assert_equivalent(rs, rb, hists)


def test_star_silent_failure_mode_agrees():
    """The Sec-1.3 failure mode: wake only the high-degree hub of a
    star with degree_threshold 0 — a non-star hub stays silent and the
    run fails identically (same asleep set) on both engines."""
    graph = star_graph(64)
    # p=0 and threshold 1: leaves (degree 1) may talk, the hub
    # (degree 63) is deterministically a silent non-star.
    factory = lambda: StarBroadcast(
        star_probability=0.0, degree_threshold=1.0
    )
    rs, rb, hists = run_both(
        factory, graph, WakeSchedule.singleton(0), require=False
    )
    assert not rs.all_awake and rs.messages == 0
    assert_equivalent(rs, rb, hists)
    # ...and waking a leaf lifts the silence: the hub broadcasts on
    # receipt, the coin is never consulted for message wakes.
    rs2, rb2, hists2 = run_both(
        factory, graph, WakeSchedule.singleton(1), require=False
    )
    assert rs2.all_awake
    assert_equivalent(rs2, rb2, hists2)


def test_star_coin_parity_mixed_wakes():
    """Random star coins must replay the per-node RNG streams exactly,
    including rounds where adversary wake-ups and message arrivals
    interleave."""
    graph = _graph(256)
    verts = list(graph.vertices())
    factory = lambda: StarBroadcast(star_probability=0.3)
    sched = WakeSchedule.staggered(
        [(0.0, verts[:1]), (1.0, verts[10:40]), (2.5, verts[40:80])]
    )
    for seed in (0, 1, 2, 3):
        rs, rb, hists = run_both(factory, graph, sched, seed=seed)
        assert_equivalent(rs, rb, hists)


def test_gossip_default_budget_small_n():
    """The derived 8 * n_hat budget (active_rounds=0) must be computed
    identically by node construction and kernel construction."""
    graph = _graph(16)
    rs, rb, hists = run_both(
        PushGossipWakeUp, graph, WakeSchedule.singleton(0), require=False
    )
    assert_equivalent(rs, rb, hists)


def test_bulk_deterministic_across_runs():
    graph = _graph(256)
    schedule = WakeSchedule.singleton(next(iter(graph.vertices())))
    setup = make_setup(graph, knowledge=Knowledge.KT1, seed=5)
    results = [
        run_wakeup(
            setup, PushGossipWakeUp(active_rounds=9), Adversary(schedule),
            engine="bulk", seed=11,
        )
        for _ in range(2)
    ]
    a, b = results
    assert a.messages == b.messages
    assert a.wake_time == b.wake_time
    assert a.metrics.round_messages == b.metrics.round_messages


# ----------------------------------------------------------------------
# Property tests: random graphs, random schedules
# ----------------------------------------------------------------------

@st.composite
def graph_and_schedule(draw):
    """A random connected graph (tree + extra edges) plus a random
    fractional wake schedule over a random vertex subset."""
    n = draw(st.integers(min_value=2, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    g = Graph(range(n))
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))  # random tree: connected
    for _ in range(draw(st.integers(min_value=0, max_value=2 * n))):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and not g.has_edge(a, b):
            g.add_edge(a, b)
    k = draw(st.integers(min_value=1, max_value=n))
    woken = rng.sample(range(n), k)
    times = {
        v: draw(
            st.floats(
                min_value=0.0, max_value=6.0, allow_nan=False,
                allow_infinity=False,
            )
        )
        for v in woken
    }
    return g, WakeSchedule(times), seed


@settings(max_examples=30, deadline=None)
@given(case=graph_and_schedule(), algo=st.sampled_from(sorted(ALGORITHMS)))
def test_property_random_graphs_and_schedules(case, algo):
    graph, schedule, seed = case
    rs, rb, hists = run_both(
        ALGORITHMS[algo], graph, schedule, seed=seed % 1000
    )
    assert_equivalent(rs, rb, hists)


@settings(max_examples=15, deadline=None)
@given(
    case=graph_and_schedule(),
    p=st.floats(min_value=0.0, max_value=1.0),
    thresh=st.floats(min_value=0.0, max_value=8.0),
)
def test_property_star_parameter_space(case, p, thresh):
    """Star broadcast across its (p, threshold) parameter space —
    including configurations that legitimately fail to wake everyone;
    the failure must be byte-identical on both lanes."""
    graph, schedule, seed = case
    factory = lambda: StarBroadcast(
        star_probability=p, degree_threshold=thresh
    )
    rs, rb, hists = run_both(factory, graph, schedule, seed=seed % 1000)
    assert_equivalent(rs, rb, hists)


# ----------------------------------------------------------------------
# Contract boundary: fallbacks and gating
# ----------------------------------------------------------------------

def _tiny():
    graph = _graph(16)
    setup = make_setup(graph, knowledge=Knowledge.KT1, seed=1)
    adv = Adversary(WakeSchedule.singleton(next(iter(graph.vertices()))))
    return setup, adv


def test_fallback_no_kernel():
    """Algorithms without a frontier kernel run on the sync engine —
    transparently, with the result recording the lane that ran."""
    setup, adv = _tiny()
    r = run_wakeup(setup, EchoFlooding(), adv, engine="bulk", seed=1)
    assert r.engine == "sync"
    assert r.all_awake


def test_fallback_trace_requested():
    """Per-message traces are out of the bulk contract: requesting one
    falls back to sync and the trace is fully populated."""
    setup, adv = _tiny()
    r = run_wakeup(
        setup, Flooding(), adv, engine="bulk", seed=1, record_trace=True
    )
    assert r.engine == "sync"
    assert r.trace is not None
    assert any(ev.kind == "send" for ev in r.trace.events)


def test_fallback_drop_strategy():
    setup, adv0 = _tiny()
    adv = FaultyAdversary(
        schedule=adv0.schedule, drops=BernoulliDrops(0.5, seed=3)
    )
    r = run_wakeup(
        setup, Flooding(), adv, engine="bulk", seed=1,
        require_all_awake=False,
    )
    assert r.engine == "sync"


def test_bulk_lane_skips_per_message_collections():
    """What the bulk lane deliberately does not fill: the per-node /
    per-edge Counters (exactly the collections Metrics.compact() drops)
    and the trace."""
    setup, adv = _tiny()
    r = run_wakeup(setup, Flooding(), adv, engine="bulk", seed=1)
    assert r.engine == "bulk"
    assert r.trace is None
    assert not r.metrics.sent_by
    assert not r.metrics.edge_messages
    assert not r.metrics.received_by
    # ...while the compact (IPC/cache) projection is indistinguishable
    # from a sync run's.
    lean = r.lean()
    assert lean.messages == r.messages
    assert lean.metrics.awake_count() == r.metrics.awake_count()


def test_unavailable_raises_clean_importerror(monkeypatch):
    import repro.sim.bulk as bulk_mod

    monkeypatch.setattr(bulk_mod, "HAS_BULK", False)
    with pytest.raises(BulkUnavailable) as exc:
        require_bulk()
    assert "repro[bulk]" in str(exc.value)
    assert isinstance(exc.value, ImportError)
    # An explicit engine="bulk" request for a kernel-capable algorithm
    # must surface the missing extras, not silently degrade.
    setup, adv = _tiny()
    with pytest.raises(BulkUnavailable):
        run_wakeup(setup, Flooding(), adv, engine="bulk", seed=1)


def test_has_bulk_reflects_environment():
    # The suite only runs when the extras are present (conftest skips
    # otherwise), so the flag must be truthful here.
    assert HAS_BULK
    require_bulk()
