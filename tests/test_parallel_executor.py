"""Cross-engine conformance and robustness tests for the parallel
sweep executor (`repro.experiments.parallel`).

The contract under test:

* **conformance** — for a grid of algorithms × n × seeds, the summary
  scalars coming out of worker processes are bit-identical to the
  serial in-process path (both the spec path with ``workers=0`` and the
  legacy callable-based :func:`~repro.experiments.sweeps.sweep`);
* **caching** — a warm re-run executes zero cells yet produces an
  identical merged JSON artifact; any changed input changes the key;
* **robustness** — a ``WakeUpFailure``, a worker killed mid-task, and a
  per-cell timeout each become a structured failed-cell record while
  the rest of the sweep completes.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.core.base import WakeUpAlgorithm
from repro.core.registry import get_algorithm
from repro.experiments.parallel import (
    CellSpec,
    ParallelSweepExecutor,
    cell_key,
    run_cell,
)
from repro.experiments.storage import load_records, merge_records
from repro.graphs.compile import clear_memory_cache
from repro.experiments.sweeps import (
    parallel_sweep,
    rows_from_outcomes,
    sweep,
    sweep_cells,
    er_single_wake,
)
from repro.models.knowledge import Knowledge
from repro.sim.node import NodeAlgorithm

# The conformance grid: algorithms spanning engines (async/sync),
# knowledge (KT0/KT1), bandwidth (LOCAL/CONGEST), and advice usage.
GRID_ALGORITHMS = [
    ("flooding", "async", "KT0", "CONGEST"),
    ("dfs-rank", "async", "KT1", "LOCAL"),
    ("fast-wakeup", "sync", "KT1", "LOCAL"),
    ("child-encoding", "async", "KT0", "CONGEST"),
]
GRID_SIZES = [16, 24]
GRID_SEEDS = [0, 1]


def _grid_cells():
    cells = []
    for name, engine, knowledge, bandwidth in GRID_ALGORITHMS:
        for seed in GRID_SEEDS:
            cells.extend(
                sweep_cells(
                    name,
                    {"kind": "er_single_wake", "avg_degree": 4.0,
                     "seed": seed},
                    sizes=GRID_SIZES,
                    engine=engine,
                    knowledge=knowledge,
                    bandwidth=bandwidth,
                    trials=2,
                    seed=seed,
                    delay={"kind": "uniform", "seed": seed}
                    if engine == "async"
                    else {"kind": "unit"},
                )
            )
    return cells


class TestConformance:
    @pytest.fixture(scope="class")
    def grid(self):
        cells = _grid_cells()
        serial = ParallelSweepExecutor(workers=0, use_cache=False).run(cells)
        return cells, serial

    def test_grid_is_large_enough(self, grid):
        cells, _ = grid
        assert len(cells) >= 32  # algorithms x seeds x sizes x trials

    def test_parallel_matches_serial_bit_for_bit(self, grid):
        cells, serial = grid
        parallel = ParallelSweepExecutor(
            workers=2, use_cache=False
        ).run(cells)
        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            assert p.ok and s.ok
            assert p.result.summary() == s.result.summary()
            assert p.result.time_all_awake == s.result.time_all_awake
            assert p.rho_awk == s.rho_awk

    def test_spec_path_matches_legacy_sweep(self):
        legacy = sweep(
            lambda: get_algorithm("flooding"),
            er_single_wake(avg_degree=4.0, seed=1),
            sizes=[20, 40],
            knowledge=Knowledge.KT0,
            bandwidth="CONGEST",
            trials=2,
            seed=3,
        )
        rows, _ = parallel_sweep(
            "flooding",
            {"kind": "er_single_wake", "avg_degree": 4.0, "seed": 1},
            sizes=[20, 40],
            knowledge="KT0",
            bandwidth="CONGEST",
            trials=2,
            seed=3,
        )
        assert rows == legacy

    def test_chunked_submission_matches_unchunked(self, grid):
        cells, serial = grid
        chunked = ParallelSweepExecutor(
            workers=2, use_cache=False, chunk_size=5
        ).run(cells)
        for s, c in zip(serial, chunked):
            assert c.result.summary() == s.result.summary()


class TestCache:
    def _sweep(self, executor):
        return parallel_sweep(
            "flooding",
            {"kind": "er_single_wake", "avg_degree": 4.0, "seed": 2},
            sizes=[16, 24],
            executor=executor,
            knowledge="KT0",
            bandwidth="CONGEST",
            trials=2,
            seed=5,
        )

    def test_warm_cache_executes_zero_cells(self, tmp_path):
        cold = ParallelSweepExecutor(workers=2, cache_dir=tmp_path / "c")
        rows_cold, out_cold = self._sweep(cold)
        assert cold.stats["executed"] == len(out_cold)

        warm = ParallelSweepExecutor(workers=2, cache_dir=tmp_path / "c")
        rows_warm, out_warm = self._sweep(warm)
        assert warm.stats["executed"] == 0
        assert warm.stats["cached"] == len(out_warm)
        assert rows_warm == rows_cold
        for a, b in zip(out_cold, out_warm):
            assert a.result.summary() == b.result.summary()

    def test_warm_cache_merged_artifact_identical(self, tmp_path):
        cold = ParallelSweepExecutor(workers=2, cache_dir=tmp_path / "c")
        _, out_cold = self._sweep(cold)
        art = tmp_path / "cells.json"
        merge_records(art, [o.record() for o in out_cold], "sweep/flooding")
        first = art.read_text()

        warm = ParallelSweepExecutor(workers=0, cache_dir=tmp_path / "c")
        _, out_warm = self._sweep(warm)
        records = [o.record() for o in out_warm]
        for r in records:
            assert r["cached"] is True
            r["cached"] = False  # provenance differs; measurements may not
        merge_records(art, records, "sweep/flooding")
        assert art.read_text() == first

    def test_merge_replaces_changed_cells_only(self, tmp_path):
        art = tmp_path / "m.json"
        merge_records(
            art,
            [{"key": "a", "v": 1}, {"key": "b", "v": 2}],
            "exp",
        )
        merged = merge_records(
            art,
            [{"key": "b", "v": 99}, {"key": "c", "v": 3}],
            "exp",
        )
        assert [r["key"] for r in merged] == ["a", "b", "c"]
        assert merged[1]["v"] == 99
        assert load_records(art)["records"] == merged

    def test_purge_cache_forces_cold_run(self, tmp_path):
        ex = ParallelSweepExecutor(workers=0, cache_dir=tmp_path / "c")
        self._sweep(ex)
        assert ex.purge_cache() == ex.stats["cells"]
        again = ParallelSweepExecutor(workers=0, cache_dir=tmp_path / "c")
        self._sweep(again)
        assert again.stats["executed"] == again.stats["cells"]

    def test_no_cache_flag_skips_disk(self, tmp_path):
        ex = ParallelSweepExecutor(
            workers=0, cache_dir=tmp_path / "c", use_cache=False
        )
        self._sweep(ex)
        assert not (tmp_path / "c").exists()

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        ex = ParallelSweepExecutor(workers=0, cache_dir=tmp_path / "c")
        self._sweep(ex)
        for f in (tmp_path / "c").rglob("*.json"):
            f.write_text("{not json")
        again = ParallelSweepExecutor(workers=0, cache_dir=tmp_path / "c")
        self._sweep(again)
        assert again.stats["executed"] == again.stats["cells"]


class TestCacheKeys:
    BASE = dict(
        algorithm="flooding",
        n=32,
        trial=0,
        seed=7,
        engine="async",
        knowledge="KT0",
        bandwidth="CONGEST",
        workload={"kind": "er_single_wake", "avg_degree": 4.0, "seed": 7},
        delay={"kind": "uniform", "seed": 7},
    )

    def test_key_is_stable(self):
        assert cell_key(CellSpec(**self.BASE)) == cell_key(
            CellSpec(**self.BASE)
        )

    @pytest.mark.parametrize(
        "change",
        [
            {"n": 33},
            {"trial": 1},
            {"seed": 8},
            {"algorithm": "dfs-rank"},
            {"engine": "sync"},
            {"delay": {"kind": "uniform", "seed": 8}},
            {"delay": {"kind": "unit"}},
            {"workload": {"kind": "er_single_wake", "avg_degree": 6.0,
                          "seed": 7}},
            {"algo_params": {"k": 3}},
            {"max_events": 10},
            {"require_all_awake": False},
        ],
    )
    def test_any_changed_input_changes_key(self, change):
        base = cell_key(CellSpec(**self.BASE))
        assert cell_key(CellSpec(**{**self.BASE, **change})) != base


# ----------------------------------------------------------------------
# Fault injection: test-only algorithms resolved via dotted path
# ----------------------------------------------------------------------
class _SilentNode(NodeAlgorithm):
    pass


class SilentAlgo(WakeUpAlgorithm):
    """Wakes up, says nothing: every other node stays asleep, so the
    runner raises WakeUpFailure."""

    name = "test-silent"
    congest_safe = True

    def make_node(self, vertex, setup):
        return _SilentNode()


class KillerAlgo(WakeUpAlgorithm):
    """Takes its worker process down mid-task (simulates a segfault)."""

    name = "test-killer"
    congest_safe = True

    def build_nodes(self, setup):
        os.kill(os.getpid(), signal.SIGKILL)

    def make_node(self, vertex, setup):  # pragma: no cover
        raise AssertionError("unreachable")


class SleeperAlgo(WakeUpAlgorithm):
    """Burns wall-clock past any sane per-cell budget.

    Sleeps in small increments rather than one blocking call: the
    watchdog's async exception lands at a bytecode boundary, so a
    single 30s C-level sleep would only time out on return.
    """

    name = "test-sleeper"
    congest_safe = True

    def build_nodes(self, setup):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            time.sleep(0.005)
        raise AssertionError("timeout did not fire")

    def make_node(self, vertex, setup):  # pragma: no cover
        raise AssertionError("unreachable")


class BusyAlgo(WakeUpAlgorithm):
    """Pure-Python busy loop — the CPU-bound runaway a real engine hang
    looks like; only an async-exception watchdog can interrupt it off
    the main thread."""

    name = "test-busy"
    congest_safe = True

    def build_nodes(self, setup):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            pass
        raise AssertionError("timeout did not fire")

    def make_node(self, vertex, setup):  # pragma: no cover
        raise AssertionError("unreachable")


def _fault_cell(algorithm, **kw):
    return CellSpec(
        algorithm=algorithm,
        n=12,
        seed=1,
        engine="async",
        knowledge="KT0",
        bandwidth="CONGEST",
        workload={"kind": "er_single_wake", "avg_degree": 3.0, "seed": 1},
        **kw,
    )


GOOD = "flooding"
HERE = "tests.test_parallel_executor"


class TestFaultInjection:
    def test_wakeup_failure_is_structured_record(self):
        cells = [
            _fault_cell(GOOD),
            _fault_cell(f"{HERE}:SilentAlgo"),
            _fault_cell(GOOD, trial=1),
        ]
        out = ParallelSweepExecutor(workers=2, use_cache=False).run(cells)
        assert [o.status for o in out] == ["ok", "failed", "ok"]
        assert "never woke up" in out[1].error
        assert out[1].result is None
        # aggregation survives the failed cell
        assert len(rows_from_outcomes(out)) == 1

    def test_worker_killed_mid_task_is_retried_then_crashed(self):
        cells = [
            _fault_cell(GOOD),
            _fault_cell(f"{HERE}:KillerAlgo"),
            _fault_cell(GOOD, trial=1),
            _fault_cell(GOOD, trial=2),
        ]
        out = ParallelSweepExecutor(workers=2, use_cache=False).run(cells)
        by_algo = {o.spec.algorithm: o for o in out}
        crashed = by_algo[f"{HERE}:KillerAlgo"]
        assert crashed.status == "crashed"
        assert crashed.attempts == 2  # initial + one retry
        assert "worker process died" in crashed.error
        good = [o for o in out if o.spec.algorithm == GOOD]
        assert all(o.ok for o in good)

    def test_cell_timeout_is_structured_record(self):
        cells = [
            _fault_cell(GOOD),
            _fault_cell(f"{HERE}:SleeperAlgo"),
        ]
        out = ParallelSweepExecutor(
            workers=2, use_cache=False, cell_timeout=0.5
        ).run(cells)
        assert out[0].ok
        assert out[1].status == "timeout"
        assert "budget" in out[1].error

    def test_cell_timeout_enforced_off_main_thread(self):
        # Regression: the budget used to be armed with SIGALRM, gated on
        # threading.current_thread() is threading.main_thread() — so a
        # cell_timeout passed from any worker thread (exactly what the
        # serve daemon's job workers do) was silently never enforced and
        # a hanging cell ran to its natural end.
        box = {}

        def work():
            box["payload"] = run_cell(
                _fault_cell(f"{HERE}:SleeperAlgo"), cell_timeout=0.5
            )

        t = threading.Thread(target=work, daemon=True)
        start = time.monotonic()
        t.start()
        t.join(timeout=15.0)
        assert not t.is_alive(), "hanging cell was never timed out"
        assert time.monotonic() - start < 15.0
        assert box["payload"]["status"] == "timeout"
        assert "budget" in box["payload"]["error"]

    def test_cell_timeout_interrupts_cpu_bound_loop_off_main_thread(self):
        box = {}

        def work():
            box["payload"] = run_cell(
                _fault_cell(f"{HERE}:BusyAlgo"), cell_timeout=0.5
            )

        t = threading.Thread(target=work, daemon=True)
        t.start()
        t.join(timeout=15.0)
        assert not t.is_alive()
        assert box["payload"]["status"] == "timeout"

    def test_near_zero_timeout_never_escapes_run_cell(self):
        # Regression: the alarm used to be armed before the try block,
        # so a budget short enough to fire in that gap leaked a raw
        # _CellTimeout out of the "never raises" worker entry point.
        for _ in range(20):
            payload = run_cell(_fault_cell(GOOD), cell_timeout=1e-6)
            assert payload["status"] in ("timeout", "ok")
            assert "duration" in payload

    def test_failures_are_never_cached(self, tmp_path):
        ex = ParallelSweepExecutor(workers=0, cache_dir=tmp_path / "c")
        ex.run([_fault_cell(f"{HERE}:SilentAlgo")])
        again = ParallelSweepExecutor(workers=0, cache_dir=tmp_path / "c")
        again.run([_fault_cell(f"{HERE}:SilentAlgo")])
        assert again.stats["executed"] == 1

    def test_inline_run_cell_never_raises(self):
        payload = run_cell(_fault_cell(f"{HERE}:SilentAlgo"))
        assert payload["ok"] is False
        assert payload["error_kind"] == "WakeUpFailure"
        assert payload["asleep"]


# ----------------------------------------------------------------------
# Topology store conformance: the compiled-topology cache is a pure
# speedup — rows are bit-identical with the store on, off, or warm.
# ----------------------------------------------------------------------
class TestTopologyStoreConformance:
    def _run(self, cells, tmp_path=None, workers=0, store=False):
        clear_memory_cache()
        ex = ParallelSweepExecutor(
            workers=workers,
            use_cache=False,
            use_topology_store=store,
            topology_dir=(tmp_path or "unused") / "topo"
            if tmp_path
            else "unused/topo",
        )
        return ex, ex.run(cells)

    @staticmethod
    def _assert_identical(a, b):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.ok and y.ok
            assert y.result.summary() == x.result.summary()
            assert y.result.time_all_awake == x.result.time_all_awake
            assert y.rho_awk == x.rho_awk

    def test_store_on_off_and_warm_rows_bit_identical(self, tmp_path):
        cells = _grid_cells()
        _, off = self._run(cells)
        on_ex, on = self._run(cells, tmp_path, store=True)
        self._assert_identical(off, on)
        # One build per distinct (workload, n): 2 workload seeds x 2
        # sizes, shared across all algorithms and trials.
        distinct = {(c.workload["seed"], c.n) for c in cells}
        assert on_ex.stats["topology.build"] == len(distinct)
        # Warm rerun: everything replays from disk, still identical.
        warm_ex, warm = self._run(cells, tmp_path, store=True)
        self._assert_identical(off, warm)
        assert warm_ex.stats["topology.build"] == 0
        assert warm_ex.stats["topology.hit_disk"] == len(distinct)

    def test_store_with_worker_pool_matches_serial(self, tmp_path):
        cells = _grid_cells()
        _, serial = self._run(cells)
        pool_ex, pooled = self._run(
            cells, tmp_path, workers=2, store=True
        )
        self._assert_identical(serial, pooled)
        # Fork workers still account one build per distinct topology
        # at most (racing workers may disk-hit instead).
        distinct = {(c.workload["seed"], c.n) for c in cells}
        assert 0 < pool_ex.stats["topology.build"] <= len(distinct)
