"""Tests for trace rendering utilities."""

import pytest

from repro.core.flooding import Flooding
from repro.graphs.generators import path_graph, star_graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup
from repro.sim.trace import Trace
from repro.sim.trace_view import (
    message_matrix,
    render_timeline,
    render_wake_wave,
)


@pytest.fixture()
def flood_trace():
    g = path_graph(5)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
    adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
    r = run_wakeup(
        setup, Flooding(), adversary, engine="async", record_trace=True
    )
    return r.trace


class TestTimeline:
    def test_contains_all_event_kinds(self, flood_trace):
        text = render_timeline(flood_trace, limit=1000)
        assert "WAKE" in text
        assert "SEND" in text
        assert "DELIVER" in text

    def test_limit_truncates(self, flood_trace):
        text = render_timeline(flood_trace, limit=3)
        assert "events total" in text
        # 3 event lines + truncation marker
        assert len(text.splitlines()) == 4

    def test_kind_filter(self, flood_trace):
        text = render_timeline(flood_trace, kinds={"wake"}, limit=1000)
        assert "WAKE" in text
        assert "SEND" not in text

    def test_custom_vertex_format(self, flood_trace):
        text = render_timeline(
            flood_trace, limit=5, vertex_fmt=lambda v: f"node{v}"
        )
        assert "node0" in text


class TestWakeWave:
    def test_buckets_in_order(self, flood_trace):
        text = render_wake_wave(flood_trace)
        lines = text.splitlines()
        assert len(lines) == 5  # path of 5: one wake per time unit
        assert "adversary: 0" in lines[0]
        assert "message" in lines[1]

    def test_empty_trace(self):
        assert render_wake_wave(Trace()) == "(no wake events)"

    def test_bucket_width(self, flood_trace):
        text = render_wake_wave(flood_trace, bucket=10.0)
        assert len(text.splitlines()) == 1


class TestMessageMatrix:
    def test_counts(self):
        g = star_graph(4)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(
            setup, Flooding(), adversary, engine="async", record_trace=True
        )
        text = message_matrix(r.trace, list(g.vertices()))
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 rows
        # center sent one message to each leaf; leaves replied once
        assert "1" in text
        assert "." in text  # zero entries rendered as dots
