"""Tests for the NIH problem and the Lemma-1 reduction."""

import pytest

from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.flooding import Flooding
from repro.core.prefix_advice import PrefixAdvice
from repro.lowerbounds.graph_g import build_class_g
from repro.lowerbounds.graph_gk import build_class_gk
from repro.lowerbounds.nih import NIHWrapper
from repro.models.knowledge import Knowledge
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def centers_awake(inst):
    return Adversary(WakeSchedule.all_at_once(inst.centers), UnitDelay())


class TestReductionOnClassG:
    def test_flooding_yields_correct_nih_outputs(self):
        inst = build_class_g(12)
        setup = inst.make_setup(seed=3)
        wrap = NIHWrapper(Flooding(), inst)
        run_wakeup(setup, wrap, centers_awake(inst), engine="async", seed=1)
        assert wrap.correctness(setup) == 1.0
        # KT0: outputs are ports
        for v, out in wrap.outputs.items():
            assert out == setup.ports.port(v, inst.matching[v])

    def test_prefix_advice_yields_correct_nih_outputs(self):
        inst = build_class_g(12)
        setup = inst.make_setup(seed=4)
        wrap = NIHWrapper(PrefixAdvice(beta=2), inst)
        run_wakeup(setup, wrap, centers_awake(inst), engine="async", seed=1)
        assert wrap.correctness(setup) == 1.0

    def test_lemma1_overhead_messages(self):
        """The reduction adds at most one message per pendant contact
        plus one per other first-contact: <= n extra on class 𝒢 where
        only pendants matter... measured against the plain run."""
        inst = build_class_g(10)
        setup = inst.make_setup(seed=5)
        plain = run_wakeup(
            setup, Flooding(), centers_awake(inst), engine="async", seed=1
        )
        wrap = NIHWrapper(Flooding(), inst)
        nih = run_wakeup(
            setup, wrap, centers_awake(inst), engine="async", seed=1
        )
        assert nih.messages <= plain.messages + len(inst.pendants)

    def test_incomplete_algorithm_scores_below_one(self):
        from repro.sim.node import NodeAlgorithm
        from repro.core.base import WakeUpAlgorithm, BOTH

        class Mute(WakeUpAlgorithm):
            name = "mute"
            synchrony = BOTH
            congest_safe = True

            def make_node(self, vertex, setup):
                return NodeAlgorithm()

        inst = build_class_g(8)
        setup = inst.make_setup(seed=2)
        wrap = NIHWrapper(Mute(), inst)
        run_wakeup(
            setup, wrap, centers_awake(inst), engine="async", seed=1,
            require_all_awake=False,
        )
        assert wrap.correctness(setup) == 0.0
        assert wrap.outputs == {}


class TestReductionOnClassGk:
    def test_kt1_outputs_are_ids(self):
        inst = build_class_gk(3, 2)
        setup = inst.make_setup(seed=7)
        wrap = NIHWrapper(Flooding(), inst)
        run_wakeup(setup, wrap, centers_awake(inst), engine="async", seed=1)
        assert wrap.correctness(setup) == 1.0
        for v, out in wrap.outputs.items():
            assert out == setup.id_of(inst.matching[v])

    def test_dfs_rank_solves_nih_on_gk(self):
        inst = build_class_gk(3, 3)
        setup = inst.make_setup(seed=8)
        wrap = NIHWrapper(DfsWakeUp(), inst)
        run_wakeup(setup, wrap, centers_awake(inst), engine="async", seed=2)
        assert wrap.correctness(setup) == 1.0


def test_wrapper_inherits_declarations():
    inst = build_class_g(4)
    wrap = NIHWrapper(DfsWakeUp(), inst)
    assert wrap.requires_kt1
    assert not wrap.congest_safe
    assert wrap.name == "nih(dfs-rank)"
