"""Tests for the Monte-Carlo success-probability tooling."""

import random

import pytest

from repro.errors import ReproError
from repro.experiments.montecarlo import (
    SuccessEstimate,
    estimate_success,
    trials_for_separation,
    wilson_interval,
)


class TestWilson:
    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert abs((0.5 - low) - (high - 0.5)) < 1e-9

    def test_extreme_zero(self):
        low, high = wilson_interval(0, 40)
        assert low == 0.0
        assert 0.0 < high < 0.2  # still informative, unlike Wald

    def test_extreme_all(self):
        low, high = wilson_interval(40, 40)
        assert high == 1.0
        assert 0.8 < low < 1.0

    def test_narrows_with_trials(self):
        w1 = wilson_interval(5, 10)
        w2 = wilson_interval(500, 1000)
        assert (w2[1] - w2[0]) < (w1[1] - w1[0])

    def test_confidence_ordering(self):
        w90 = wilson_interval(30, 100, confidence=0.90)
        w99 = wilson_interval(30, 100, confidence=0.99)
        assert (w99[1] - w99[0]) > (w90[1] - w90[0])

    def test_validation(self):
        with pytest.raises(ReproError):
            wilson_interval(1, 0)
        with pytest.raises(ReproError):
            wilson_interval(5, 3)
        with pytest.raises(ReproError):
            wilson_interval(1, 10, confidence=0.5)


class TestEstimate:
    def test_deterministic_trial(self):
        est = estimate_success(lambda s: True, trials=20)
        assert est.rate == 1.0
        assert est.high == 1.0

    def test_bernoulli_trial_covers_truth(self):
        p = 0.7

        def trial(seed: int) -> bool:
            return random.Random(seed).random() < p

        est = estimate_success(trial, trials=400, seed=3)
        assert est.low <= p <= est.high
        assert abs(est.rate - p) < 0.1

    def test_seeds_are_distinct(self):
        seen = []

        def trial(seed: int) -> bool:
            seen.append(seed)
            return True

        estimate_success(trial, trials=10, seed=1)
        assert len(set(seen)) == 10

    def test_str(self):
        est = SuccessEstimate(
            successes=7, trials=10, confidence=0.95, low=0.4, high=0.9
        )
        assert "7/10" in str(est)

    def test_zero_trials(self):
        with pytest.raises(ReproError):
            estimate_success(lambda s: True, trials=0)


class TestPlanning:
    def test_separation_sizes(self):
        few = trials_for_separation(0.5, 0.9)
        many = trials_for_separation(0.5, 0.6)
        assert many > few
        assert few >= 10

    def test_validation(self):
        with pytest.raises(ReproError):
            trials_for_separation(0.9, 0.5)
        with pytest.raises(ReproError):
            trials_for_separation(0.1, 0.2, confidence=0.42)


class TestIntegrationWithStarFailure:
    def test_star_failure_probability_interval(self):
        """The Sec-1.3 failure rate, now with an honest interval."""
        from repro.core.star_broadcast import StarBroadcast
        from repro.graphs.generators import complete_graph
        from repro.models.knowledge import Knowledge, make_setup
        from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
        from repro.sim.runner import run_wakeup

        g = complete_graph(30)

        def trial(seed: int) -> bool:
            setup = make_setup(g, knowledge=Knowledge.KT1, seed=seed)
            r = run_wakeup(
                setup,
                StarBroadcast(star_probability=0.2, degree_threshold=5.0),
                Adversary(WakeSchedule.singleton(0), UnitDelay()),
                engine="async",
                seed=seed,
                require_all_awake=False,
            )
            return r.all_awake

        est = estimate_success(trial, trials=60, seed=4)
        # success iff the single woken node sampled star: p = 0.2
        assert est.low <= 0.2 <= est.high
