"""Repository self-checks: the claims the README/DESIGN make about
coverage are enforced here, so they cannot silently rot.

* every Table-1 row in the registry instantiates and solves a smoke
  workload in its declared model;
* every experiment id in DESIGN.md §4 has its bench file on disk;
* every example and doc file referenced by the README exists;
* the public package surface imports cleanly from a single entry point.
"""

import pathlib

import pytest

import repro
from repro.core import TABLE1_ROWS, algorithm_names, get_algorithm

ROOT = pathlib.Path(__file__).resolve().parent.parent

EXPECTED_BENCHES = [
    "bench_theorem3.py",
    "bench_theorem4.py",
    "bench_corollary1.py",
    "bench_theorem5a.py",
    "bench_theorem5b.py",
    "bench_theorem6.py",
    "bench_corollary2.py",
    "bench_theorem1_lb.py",
    "bench_theorem2_lb.py",
    "bench_fig1_ports.py",
    "bench_fig2_gk.py",
    "bench_fig3_swap.py",
    "bench_star_failure.py",
    "bench_footnote3_gossip.py",
    "bench_synchronizer.py",
    "bench_ablations.py",
    "bench_advice_integrity.py",
    "bench_apps.py",
]

EXPECTED_EXAMPLES = [
    "quickstart.py",
    "datacenter_wakeup.py",
    "wireless_wakeup.py",
    "adversarial_attacks.py",
    "advice_tradeoffs.py",
    "leader_election_demo.py",
]

EXPECTED_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/architecture.md",
    "docs/models.md",
    "docs/algorithms.md",
    "docs/extending.md",
    "docs/api.md",
]


def test_every_table1_row_registered_and_runnable():
    for row, name in TABLE1_ROWS.items():
        result = repro.quick_run(name, n=30, awake=2, seed=1)
        assert result.all_awake, (row, name)


def test_all_benches_present():
    for bench in EXPECTED_BENCHES:
        assert (ROOT / "benchmarks" / bench).exists(), bench


def test_all_examples_present():
    for example in EXPECTED_EXAMPLES:
        assert (ROOT / "examples" / example).exists(), example


def test_all_docs_present_and_nonempty():
    for doc in EXPECTED_DOCS:
        path = ROOT / doc
        assert path.exists(), doc
        assert len(path.read_text()) > 500, doc


def test_registry_names_stable():
    """Renaming an algorithm is an API break; update README/DESIGN when
    this list changes."""
    assert set(algorithm_names()) >= {
        "flooding",
        "dfs-rank",
        "fast-wakeup",
        "fip06-tree-advice",
        "sqrt-threshold-advice",
        "child-encoding",
        "spanner-advice",
        "log-spanner-advice",
        "prefix-advice",
        "star-broadcast",
        "push-gossip",
    }


def test_public_surface_importable():
    # One import pulls the whole advertised API.
    assert repro.Flooding and repro.DfsWakeUp and repro.run_wakeup
    assert repro.__version__
    for name in algorithm_names():
        assert get_algorithm(name).name
