"""Tests for the Theorem-6 / Corollary-2 spanner advising schemes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spanner_advice import (
    LogSpannerAdvice,
    SpannerAdvice,
    TreeSpannerAdvice,
    decode_spanner_advice,
    encode_spanner_advice,
)
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    grid_graph,
    random_tree,
    star_graph,
)
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def run_scheme(graph, awake, algo, seed=0):
    setup = make_setup(graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    return run_wakeup(setup, algo, adversary, engine="async", seed=seed + 1)


opt_port = st.one_of(st.none(), st.integers(1, 10**4))


@given(
    first=opt_port,
    entries=st.lists(
        st.tuples(st.integers(1, 10**4), opt_port, opt_port), max_size=10
    ),
)
@settings(max_examples=60)
def test_spanner_advice_roundtrip(first, entries):
    # host ports must be unique per node for the dict decoding
    seen = set()
    uniq = []
    for hp, a, b in entries:
        if hp not in seen:
            seen.add(hp)
            uniq.append((hp, a, b))
    bits = encode_spanner_advice(first, uniq)
    dec_first, dec_entries = decode_spanner_advice(bits)
    assert dec_first == first
    assert dec_entries == {hp: (a, b) for hp, a, b in uniq}


class TestCorrectness:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_all_awake(self, k):
        g = connected_erdos_renyi(50, 0.15, seed=k)
        r = run_scheme(g, [0], SpannerAdvice(k=k))
        assert r.all_awake

    def test_log_variant(self):
        g = connected_erdos_renyi(60, 0.12, seed=5)
        r = run_scheme(g, [0, 30], LogSpannerAdvice())
        assert r.all_awake

    def test_tree_ablation_variant(self):
        g = grid_graph(6, 6)
        r = run_scheme(g, [0], TreeSpannerAdvice())
        assert r.all_awake

    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: star_graph(40),
            lambda: complete_graph(25),
            lambda: random_tree(50, seed=1),
        ],
    )
    def test_structured_graphs(self, graph_factory):
        g = graph_factory()
        r = run_scheme(g, [next(iter(g.vertices()))], SpannerAdvice(k=3))
        assert r.all_awake

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SpannerAdvice(k=0)


class TestBounds:
    def test_messages_proportional_to_spanner_size(self):
        """Each spanner edge carries O(1) messages (probe + next in
        each direction at most)."""
        g = complete_graph(40)
        algo = SpannerAdvice(k=2)
        r = run_scheme(g, list(g.vertices()), algo)
        spanner_edges = algo.last_spanner.num_edges
        assert r.messages <= 4 * spanner_edges

    def test_beats_flooding_on_dense_graph(self):
        from repro.core.flooding import Flooding

        g = complete_graph(50)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        adversary = Adversary(
            WakeSchedule.all_at_once(list(g.vertices())), UnitDelay()
        )
        spanner = run_wakeup(
            setup, SpannerAdvice(k=2), adversary, engine="async", seed=2
        )
        flood = run_wakeup(setup, Flooding(), adversary, engine="async", seed=2)
        assert spanner.messages < flood.messages / 2

    def test_time_scales_with_stretch_times_rho(self):
        g = grid_graph(8, 8)
        rho = awake_distance(g, [0])
        k = 3
        r = run_scheme(g, [0], SpannerAdvice(k=k))
        n = g.num_vertices
        assert r.time_all_awake <= 4 * (2 * k - 1) * rho * math.log2(n)

    def test_log_spanner_advice_polylog(self):
        for n in (64, 256):
            g = connected_erdos_renyi(n, 8.0 / n, seed=n)
            setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
            advice = LogSpannerAdvice().compute_advice(setup)
            # average O(log^2 n) bits
            assert advice.average_bits <= 4 * math.log2(n) ** 2

    def test_congest_safe(self):
        g = complete_graph(30)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        r = run_scheme(g, [0], SpannerAdvice(k=2))
        assert r.max_message_bits <= setup.bandwidth.cap_bits

    def test_higher_k_means_fewer_messages_on_dense(self):
        g = complete_graph(60)
        msgs = {}
        for k in (2, 4):
            algo = SpannerAdvice(k=k, spanner_seed=1)
            r = run_scheme(g, list(g.vertices()), algo, seed=1)
            msgs[k] = r.messages
        assert msgs[4] <= msgs[2]
