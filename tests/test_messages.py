"""Tests for message payload size accounting."""

import pytest

from repro.errors import SimulationError
from repro.sim.messages import Message, bit_size


class TestBitSize:
    def test_none_and_bool(self):
        assert bit_size(None) == 1
        assert bit_size(True) == 1
        assert bit_size(False) == 1

    def test_int_scaling(self):
        assert bit_size(0) == 2
        assert bit_size(1) == 2
        assert bit_size(255) == 9
        assert bit_size(2**32) == 34

    def test_int_monotone(self):
        sizes = [bit_size(2**i) for i in range(0, 40, 4)]
        assert sizes == sorted(sizes)

    def test_float(self):
        assert bit_size(3.14) == 64

    def test_string_is_constant_tag_cost(self):
        assert bit_size("wake") == 8
        assert bit_size("x") == 8

    def test_bytes(self):
        assert bit_size(b"abc") == 24

    def test_tuple_framing(self):
        # two ints + 2 bits framing each
        assert bit_size((1, 1)) == 2 * (2 + 2)

    def test_nested_containers(self):
        flat = bit_size((1, 2, 3))
        nested = bit_size(((1, 2, 3),))
        assert nested == flat + 2

    def test_list_equals_tuple(self):
        assert bit_size([1, 2]) == bit_size((1, 2))

    def test_set_cost(self):
        assert bit_size({1, 2}) == bit_size([1, 2])

    def test_dict(self):
        assert bit_size({1: 2}) == bit_size(1) + bit_size(2) + 4

    def test_id_list_scales_linearly(self):
        small = bit_size(tuple(range(100, 110)))
        large = bit_size(tuple(range(100, 200)))
        assert large > 5 * small

    def test_unmeasurable_payload(self):
        class Opaque:
            pass

        with pytest.raises(SimulationError):
            bit_size(Opaque())

    def test_size_bits_hook(self):
        class Sized:
            def size_bits(self):
                return 17

        assert bit_size(Sized()) == 17


class TestBitSizeCached:
    def test_agrees_with_bit_size(self):
        from repro.sim.messages import bit_size_cached

        payloads = [
            ("wake",),
            ("token", 3, 17, (1, 2, 3)),
            (True, 0, -5),
            tuple(range(100)),          # vectorized int-run path
            [1, 2, 3],                  # list: measured, memo-eligible
            ("deep", ("nested", (1,))),
            (1.5, "x"),
        ]
        for p in payloads:
            # Twice: cold (computes + populates) and warm (cache hit).
            assert bit_size_cached(p) == bit_size(p)
            assert bit_size_cached(p) == bit_size(p)

    def test_distinguishes_equal_but_differently_typed_values(self):
        from repro.sim.messages import bit_size_cached

        # 1 == True == 1.0 but their charges differ; the structural
        # key must keep them apart.
        assert bit_size_cached((1,)) == bit_size((1,))
        assert bit_size_cached((True,)) == bit_size((True,))
        assert bit_size_cached((1.0,)) == bit_size((1.0,))
        assert bit_size_cached((True,)) != bit_size_cached((1.0,))


class TestMessage:
    def test_frozen(self):
        m = Message(
            src=0, dst=1, dst_port=1, src_port=2, payload=("x",),
            bits=8, sent_at=0.0, seq=0,
        )
        with pytest.raises(AttributeError):
            m.src = 9  # type: ignore[misc]
