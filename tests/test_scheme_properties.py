"""Property suites over the advising schemes: correctness for *every*
start vertex and *every* port randomization hypothesis throws at them.

These are the strongest correctness statements in the suite — an
advising scheme must work for the worst-case awake set (the adversary
picks it after the oracle has committed), so per-start exhaustiveness
on random topologies is the right test shape.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.spanner_advice import SpannerAdvice
from repro.core.sqrt_advice import SqrtThresholdAdvice
from repro.graphs.generators import connected_erdos_renyi, random_tree
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup

SETTINGS = dict(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def all_starts_work(graph, algorithm_factory, seed: int) -> None:
    """Assert the scheme wakes everyone from every possible single
    adversary-chosen start (the oracle runs once; the adversary then
    picks any start)."""
    setup = make_setup(
        graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=seed
    )
    algo = algorithm_factory()
    advice = algo.compute_advice(setup)
    committed = setup.with_advice(dict(advice.items()))
    for start in graph.vertices():
        adversary = Adversary(WakeSchedule.singleton(start), UnitDelay())
        result = run_wakeup(
            committed, algorithm_factory(), adversary, engine="async",
            seed=seed,
        )
        assert result.all_awake, f"failed from start {start!r}"


@given(seed=st.integers(0, 3000), n=st.integers(4, 18))
@settings(**SETTINGS)
def test_fip06_every_start(seed, n):
    g = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    all_starts_work(g, Fip06TreeAdvice, seed)


@given(seed=st.integers(0, 3000), n=st.integers(4, 18))
@settings(**SETTINGS)
def test_cen_every_start(seed, n):
    g = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    all_starts_work(g, ChildEncodingAdvice, seed)


@given(seed=st.integers(0, 3000), n=st.integers(4, 16))
@settings(**SETTINGS)
def test_cen_every_start_on_trees(seed, n):
    g = random_tree(n, seed=seed)
    all_starts_work(g, ChildEncodingAdvice, seed)


@given(seed=st.integers(0, 3000), n=st.integers(4, 16))
@settings(**SETTINGS)
def test_sqrt_threshold_every_start(seed, n):
    g = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    all_starts_work(g, SqrtThresholdAdvice, seed)


@given(seed=st.integers(0, 3000), n=st.integers(5, 15))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_spanner_advice_every_start(seed, n):
    g = connected_erdos_renyi(n, 4.0 / n, seed=seed)
    all_starts_work(g, lambda: SpannerAdvice(k=2, spanner_seed=seed), seed)


@given(seed=st.integers(0, 3000))
@settings(**SETTINGS)
def test_oracle_is_awake_set_oblivious(seed):
    """The oracle's output cannot depend on which nodes the adversary
    wakes: computing advice twice around different runs yields
    identical bits (structural obliviousness check)."""
    g = connected_erdos_renyi(14, 0.3, seed=seed)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=seed)
    before = ChildEncodingAdvice().compute_advice(setup)
    adversary = Adversary(
        WakeSchedule.random_subset(g, 3, seed=seed), UnitDelay()
    )
    run_wakeup(setup, ChildEncodingAdvice(), adversary, engine="async", seed=1)
    after = ChildEncodingAdvice().compute_advice(setup)
    for v in g.vertices():
        assert before[v] == after[v]
