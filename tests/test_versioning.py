"""Per-subsystem salt derivation (repro.versioning).

The invalidation contract PR-9 rests on:

* digests are stable — across calls and across *processes* (no
  PYTHONHASHSEED leakage, no dict-order dependence);
* comment/docstring-only edits never move a digest; code edits always
  do;
* the subsystem map is a total partition of the package — an unmapped
  module is a test failure, not a silent cache hole;
* per-algorithm salts isolate algorithms from each other: a
  spanner-advice edit must not move flooding's salt.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap

import pytest

from repro import versioning as V
from repro.core.registry import algorithm_names

# ----------------------------------------------------------------------
# Normalization
# ----------------------------------------------------------------------
BASE = textwrap.dedent(
    '''
    """Module docstring."""

    # a comment
    X = 1


    def f(a):
        """Docstring."""
        return a + X


    class C:
        """Docstring."""

        def m(self):
            # another comment
            return f(2)
    '''
)

DOC_EDIT = BASE.replace("Module docstring.", "Totally new words.").replace(
    "# a comment", "# different comment"
).replace('"""Docstring."""', '"""Other docs."""')

CODE_EDIT = BASE.replace("return a + X", "return a - X")


class TestNormalization:
    def test_doc_and_comment_edits_do_not_move_digest(self):
        assert V.source_digest(BASE) == V.source_digest(DOC_EDIT)

    def test_code_edit_moves_digest(self):
        assert V.source_digest(BASE) != V.source_digest(CODE_EDIT)

    def test_whitespace_reformat_does_not_move_digest(self):
        reformatted = BASE.replace("def f(a):", "def f(a,\n):")
        assert V.source_digest(BASE) == V.source_digest(reformatted)

    def test_unparsable_source_still_digests(self):
        broken = "def f(:\n"
        assert V.source_digest(broken) == V.source_digest(broken)
        assert V.source_digest(broken) != V.source_digest(broken + "# c\n")

    def test_docstring_only_module(self):
        assert V.source_digest('"""Only docs."""\n') == V.source_digest(
            '"""Other docs."""\n'
        )


# ----------------------------------------------------------------------
# Stability
# ----------------------------------------------------------------------
class TestStability:
    def test_repeated_calls_are_stable(self):
        assert V.salt_vector() == V.salt_vector()
        assert V.code_salt() == V.code_salt()

    def test_cross_process_stability(self):
        """The same source tree must digest identically in a fresh
        interpreter (different PYTHONHASHSEED, cold caches)."""
        script = (
            "import json\n"
            "from repro import versioning as V\n"
            "print(json.dumps([V.salt_vector(), "
            "V.algorithm_salt('flooding')]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        import json

        vector, flooding = json.loads(out)
        assert vector == V.salt_vector()
        assert flooding == V.algorithm_salt("flooding")


# ----------------------------------------------------------------------
# Subsystem map completeness
# ----------------------------------------------------------------------
class TestSubsystemMap:
    def test_every_module_maps_to_exactly_one_subsystem(self):
        unmapped = []
        for module in V.module_index():
            try:
                V.subsystem_of(module)
            except KeyError:
                unmapped.append(module)
        assert not unmapped, (
            f"modules outside the subsystem map: {unmapped}; "
            "extend repro.versioning.SUBSYSTEMS"
        )

    def test_longest_prefix_wins(self):
        assert V.subsystem_of("repro.sim.runner") == "engine"
        assert V.subsystem_of("repro.models.ports") == "engine"
        assert V.subsystem_of("repro.graphs.compile") == "graphs"
        assert V.subsystem_of("repro.core.flooding") == "algorithms"
        assert V.subsystem_of("repro.advice.oracle") == "algorithms"
        assert V.subsystem_of("repro.check.controller") == "check"
        assert V.subsystem_of("repro.lowerbounds.classg") == "check"
        assert V.subsystem_of("repro.experiments.parallel") == "harness"
        assert V.subsystem_of("repro.versioning") == "harness"
        assert V.subsystem_of("repro") == "harness"

    def test_unknown_module_raises(self):
        with pytest.raises(KeyError):
            V.subsystem_of("repro.brand_new_toplevel")
        with pytest.raises(KeyError):
            V.subsystem_of("numpy")

    def test_salt_vector_covers_every_subsystem(self):
        assert set(V.salt_vector()) == set(V.SUBSYSTEMS)

    def test_subsystem_salts_are_distinct(self):
        vec = V.salt_vector()
        assert len(set(vec.values())) == len(vec)


# ----------------------------------------------------------------------
# Import closure (pure, over synthetic sources)
# ----------------------------------------------------------------------
SYNTH = {
    "pkg.a": "import pkg.b\nfrom pkg import c\n",
    "pkg.b": "from pkg.d import thing\n",
    "pkg.c": "X = 1\n",
    "pkg.d": "def thing():\n    return 1\n",
    "pkg.e": "import pkg.a\n",
    "pkg.registry": "import pkg.a\nimport pkg.e\n",
}


class TestImportClosure:
    def test_transitive_closure(self):
        assert V.import_closure("pkg.a", SYNTH) == {
            "pkg.a",
            "pkg.b",
            "pkg.c",
            "pkg.d",
        }

    def test_closure_ignores_outside_modules(self):
        sources = {"m.x": "import os\nimport m.y\n", "m.y": "pass\n"}
        assert V.import_closure("m.x", sources) == {"m.x", "m.y"}

    def test_barrier_included_but_not_expanded(self):
        closure = V.import_closure(
            "pkg.e", SYNTH, barriers=("pkg.a",)
        )
        # pkg.a joins the closure (its digest matters) but its imports
        # (pkg.b/c/d) do not.
        assert closure == {"pkg.e", "pkg.a"}

    def test_relative_imports_resolve(self):
        sources = {
            "p.sub.m": "from . import n\nfrom ..top import t\n",
            "p.sub.n": "pass\n",
            "p.top": "t = 1\n",
        }
        assert V.import_closure("p.sub.m", sources) == {
            "p.sub.m",
            "p.sub.n",
            "p.top",
        }


# ----------------------------------------------------------------------
# Per-algorithm salts
# ----------------------------------------------------------------------
class TestAlgorithmSalts:
    def test_flooding_isolated_from_spanner_advice(self):
        assert V.algorithm_salt("flooding") != V.algorithm_salt(
            "spanner-advice"
        )

    def test_lambda_factories_resolve_their_class_module(self):
        # "greedy-spanner-advice" is a registry lambda wrapping
        # SpannerAdvice; it must share spanner-advice's salt, not fall
        # back to the whole-subsystem salt.
        assert V.algorithm_salt("greedy-spanner-advice") == V.algorithm_salt(
            "spanner-advice"
        )
        assert V.algorithm_salt("greedy-spanner-advice") != V.subsystem_salt(
            "algorithms"
        )

    def test_every_registered_algorithm_gets_a_fine_salt(self):
        # Other test modules may register test-only algorithms whose
        # defining module lives outside the package; those fall back
        # to the coarse salt by design, so only the package's own
        # algorithms are held to the fine-salt bar.
        coarse = V.subsystem_salt("algorithms")
        checked = 0
        for name in algorithm_names():
            module = V._algorithm_module(name)
            if module is None:
                continue
            checked += 1
            assert V.algorithm_salt(name) != coarse, (
                f"{name} fell back to the whole-subsystem salt"
            )
        assert checked >= 5, "registry lost its built-in algorithms"

    def test_unknown_and_external_algorithms_fall_back(self):
        coarse = V.subsystem_salt("algorithms")
        assert V.algorithm_salt("no-such-algorithm") == coarse
        assert (
            V.algorithm_salt("tests.test_parallel_executor:KillerAlgo")
            == coarse
        )

    def test_cell_salt_vector_shape(self):
        vec = V.cell_salt_vector("flooding")
        assert set(vec) == {"engine", "graphs", "algorithms"}
        assert vec["engine"] == V.subsystem_salt("engine")
        assert vec["graphs"] == V.subsystem_salt("graphs")
        assert vec["algorithms"] == V.algorithm_salt("flooding")

    def test_replay_salt_vector_shape(self):
        vec = V.replay_salt_vector()
        assert set(vec) == {"engine", "check"}

    def test_atlas_salt_vector_shape(self):
        plain = V.atlas_salt_vector("flooding")
        assert plain == V.cell_salt_vector("flooding")
        controlled = V.atlas_salt_vector("flooding", controlled=True)
        assert set(controlled) == {
            "engine", "graphs", "algorithms", "check",
        }
        assert controlled["check"] == V.subsystem_salt("check")
        # The opt salt itself joins neither: strategy edits must not
        # invalidate committed frontier entries.
        assert "opt" not in plain and "opt" not in controlled


# ----------------------------------------------------------------------
# Edit sensitivity over a real (sandboxed) package copy
# ----------------------------------------------------------------------
class TestEditSensitivity:
    def _salts_for_tree(self, tmp_path, edit=None):
        """Copy the real package, optionally apply ``edit``, and
        derive salts in a subprocess rooted at the copy (the memoized
        module walk binds to the imported package location)."""
        import shutil

        root = tmp_path / "site"
        shutil.copytree(V.package_root(), root / "repro")
        if edit is not None:
            target, transform = edit
            path = root / "repro" / target
            path.write_text(transform(path.read_text()))
        script = (
            "import json\n"
            "from repro import versioning as V\n"
            "print(json.dumps({'vector': V.salt_vector(), "
            "'flooding': V.algorithm_salt('flooding'), "
            "'spanner': V.algorithm_salt('spanner-advice')}))\n"
        )
        import json as _json
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = str(root)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        ).stdout
        return _json.loads(out)

    def test_algorithm_edit_isolated(self, tmp_path):
        base = self._salts_for_tree(tmp_path)
        edited = self._salts_for_tree(
            tmp_path / "edited",
            edit=(
                "core/spanner_advice.py",
                lambda s: s + "\nSMOKE_TOKEN = 1\n",
            ),
        )
        # Only the algorithms subsystem moved...
        assert edited["vector"]["algorithms"] != base["vector"]["algorithms"]
        for sub in ("engine", "graphs", "check", "opt", "harness"):
            assert edited["vector"][sub] == base["vector"][sub]
        # ...and within it, spanner-advice moved while flooding held.
        assert edited["spanner"] != base["spanner"]
        assert edited["flooding"] == base["flooding"]

    def test_comment_edit_moves_nothing(self, tmp_path):
        base = self._salts_for_tree(tmp_path)
        edited = self._salts_for_tree(
            tmp_path / "edited",
            edit=(
                "core/spanner_advice.py",
                lambda s: s + "\n# a trailing comment\n",
            ),
        )
        assert edited == base

    def test_engine_edit_moves_engine_only(self, tmp_path):
        base = self._salts_for_tree(tmp_path)
        edited = self._salts_for_tree(
            tmp_path / "edited",
            edit=(
                "sim/runner.py",
                lambda s: s + "\nSMOKE_TOKEN = 2\n",
            ),
        )
        assert edited["vector"]["engine"] != base["vector"]["engine"]
        for sub in ("graphs", "algorithms", "check", "opt", "harness"):
            assert edited["vector"][sub] == base["vector"][sub]
        # Every algorithm's cells still depend on the engine salt via
        # cell_salt_vector, but the *algorithm* salts hold.
        assert edited["flooding"] == base["flooding"]
        assert edited["spanner"] == base["spanner"]

    def test_opt_edit_moves_opt_only(self, tmp_path):
        """An optimizer-strategy edit moves the opt salt and nothing
        else — search code picks candidates but never executes them,
        so no cell cache entry (and no atlas salt vector) depends on
        it."""
        base = self._salts_for_tree(tmp_path)
        edited = self._salts_for_tree(
            tmp_path / "edited",
            edit=(
                "opt/optimizers.py",
                lambda s: s + "\nSMOKE_TOKEN = 3\n",
            ),
        )
        assert edited["vector"]["opt"] != base["vector"]["opt"]
        for sub in ("engine", "graphs", "algorithms", "check",
                    "harness"):
            assert edited["vector"][sub] == base["vector"][sub]
