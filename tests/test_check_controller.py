"""Tests for the controlled async engine loop (repro.check.controller).

The load-bearing property is *bit-identical replay*: a schedule chosen
by any controller must reproduce exactly — through a strict
ReplayController (choice replay) and through the plain, uncontrolled
engine fed the recorded per-seq delays (delay replay).  Everything the
explorer and worst-case search conclude rests on this.
"""

import pytest

from repro.check.controller import (
    DEFAULT_REPLAY_DIR,
    RandomController,
    ReplayController,
    ReplayDelay,
    load_replay,
    make_replay,
    save_replay,
)
from repro.core import get_algorithm
from repro.errors import SimulationError
from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup
from repro.sim.trace import Trace


def _world(graph_fn=cycle_graph, n=4, algo="flooding", wakes=None,
           knowledge=Knowledge.KT0):
    wakes = wakes if wakes is not None else {0: 0.0}

    def world():
        setup = make_setup(
            graph_fn(n), knowledge=knowledge, bandwidth="LOCAL", seed=1
        )
        return (
            setup,
            get_algorithm(algo),
            Adversary(WakeSchedule(dict(wakes)), UnitDelay()),
        )

    return world


def _controlled(world, ctl, trace=None):
    setup, algo, adv = world()
    return run_wakeup(
        setup, algo, adv, engine="async", seed=0,
        require_all_awake=False, trace=trace, controller=ctl,
    )


class TestControlledRun:
    def test_matches_plain_run_totals(self):
        world = _world()
        ctl = RandomController(seed=3)
        controlled = _controlled(world, ctl)
        setup, algo, adv = world()
        plain = run_wakeup(setup, algo, adv, engine="async", seed=0)
        # The schedule differs but conserved quantities must agree:
        # flooding broadcasts exactly once per node.
        assert controlled.messages == plain.messages
        assert controlled.bits == plain.bits
        assert controlled.all_awake

    def test_log_records_every_send_delay(self):
        world = _world()
        ctl = RandomController(seed=5)
        result = _controlled(world, ctl)
        # The engine's seq counter is shared: the single wake takes
        # seq 0, sends take 1..messages.
        assert set(ctl.log.delays) == set(range(1, result.messages + 1))
        assert all(0.0 < d <= 1.0 for d in ctl.log.delays.values())

    def test_controller_rejected_on_sync_engine(self):
        world = _world(algo="flooding")
        setup, algo, adv = world()
        with pytest.raises(SimulationError, match="async"):
            run_wakeup(
                setup, algo, adv, engine="sync",
                controller=RandomController(),
            )


class TestBitIdenticalReplay:
    @pytest.mark.parametrize("laziness", [0.0, 0.5, 1.0])
    def test_plain_engine_replays_recorded_delays(self, laziness):
        world = _world(complete_graph, 4, wakes={0: 0.0, 2: 0.4})
        ctl = RandomController(seed=7, laziness=laziness)
        t1 = Trace()
        controlled = _controlled(world, ctl, trace=t1)

        setup, algo, adv = world()
        t2 = Trace()
        replayed = run_wakeup(
            setup, algo,
            Adversary(adv.schedule, ReplayDelay(ctl.log.delays)),
            engine="async", seed=0, require_all_awake=False, trace=t2,
        )
        assert replayed.messages == controlled.messages
        assert replayed.bits == controlled.bits
        assert replayed.time == controlled.time
        assert replayed.wake_time == controlled.wake_time
        assert (
            replayed.metrics.events_processed
            == controlled.metrics.events_processed
        )
        assert len(t1.events) == len(t2.events)
        for a, b in zip(t1.events, t2.events):
            assert (a.kind, a.vertex, a.time) == (b.kind, b.vertex, b.time)

    def test_strict_choice_replay_reproduces_run(self):
        world = _world(path_graph, 5, algo="echo-flooding")
        ctl = RandomController(seed=11, record_states=True)
        controlled = _controlled(world, ctl)

        replay = ReplayController(list(ctl.log.choices), strict=True)
        replay.record_states = True
        again = _controlled(world, replay)
        assert replay.log.choices == ctl.log.choices
        assert replay.log.delays == ctl.log.delays
        assert replay.log.final_state == ctl.log.final_state
        assert again.messages == controlled.messages

    def test_replay_counts_match_telemetry_event_totals(self):
        from repro.obs.recorder import Recorder

        class Capture(Recorder):
            enabled = True

            def __init__(self):
                self.events = []

            def emit(self, kind, **fields):
                self.events.append(kind)

            def close(self):
                pass

        world = _world(cycle_graph, 5)
        ctl = RandomController(seed=2)
        rec1 = Capture()
        setup, algo, adv = world()
        run_wakeup(
            setup, algo, adv, engine="async", seed=0,
            require_all_awake=False, controller=ctl, recorder=rec1,
        )
        rec2 = Capture()
        setup, algo, adv = world()
        run_wakeup(
            setup, algo,
            Adversary(adv.schedule, ReplayDelay(ctl.log.delays)),
            engine="async", seed=0, require_all_awake=False,
            recorder=rec2,
        )
        from collections import Counter

        assert Counter(rec1.events) == Counter(rec2.events)


class TestReplayControllerModes:
    def test_strict_raises_on_exhausted_choices(self):
        world = _world(complete_graph, 4)
        rand = RandomController(seed=1)
        _controlled(world, rand)
        assert len(rand.log.choices) > 1
        short = ReplayController(list(rand.log.choices)[:1], strict=True)
        with pytest.raises(SimulationError, match="exhausted"):
            _controlled(world, short)

    def test_lenient_pads_with_canonical_choice(self):
        world = _world(complete_graph, 4)
        rand = RandomController(seed=1)
        _controlled(world, rand)
        lenient = ReplayController(list(rand.log.choices)[:1])
        result = _controlled(world, lenient)
        assert result.all_awake

    def test_lenient_tolerates_out_of_range(self):
        world = _world(cycle_graph, 4)
        ctl = ReplayController([999, 999, 999])
        result = _controlled(world, ctl)
        assert result.all_awake

    def test_replay_delay_raises_on_unknown_seq(self):
        rd = ReplayDelay({0: 0.5})
        assert rd.delay(0, 1, 0.0, 0) == 0.5
        with pytest.raises(SimulationError, match="seq 1"):
            rd.delay(0, 1, 0.0, 1)


class TestLazinessKnob:
    def test_lazy_runs_stretch_time(self):
        world = _world(cycle_graph, 6)
        eager = RandomController(seed=4, laziness=0.0)
        r_eager = _controlled(world, eager)
        lazy = RandomController(seed=4, laziness=1.0)
        r_lazy = _controlled(world, lazy)
        assert r_lazy.time > r_eager.time
        assert r_lazy.messages == r_eager.messages


class TestReplayArtifacts:
    def test_roundtrip(self, tmp_path):
        world = _world()
        ctl = RandomController(seed=9)
        _controlled(world, ctl)
        _, _, adv = world()
        replay = make_replay(
            algorithm="flooding", n=4, log=ctl.log,
            schedule_times=adv.schedule.times(), seed=0,
            objective="time", score=1.5,
            workload={"graph": "cycle"},
        )
        path = save_replay(replay, tmp_path / "r.json")
        loaded = load_replay(path)
        assert loaded["choices"] == list(ctl.log.choices)
        assert loaded["delays"] == dict(ctl.log.delays)
        assert loaded["algorithm"] == "flooding"

    def test_load_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"kind": "something-else"}')
        with pytest.raises(SimulationError, match="artifact"):
            load_replay(p)

    def test_default_replay_dir_is_under_results(self):
        assert "results" in str(DEFAULT_REPLAY_DIR)
