"""Tests for the downstream-application layer (leader election,
spanning tree, payload broadcast)."""

import pytest

from repro.apps import FloodingBroadcast, LeaderElection, TreeBroadcast
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.traversal import is_tree
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.runner import run_wakeup


def run_le(graph, schedule, seed=0, delays=None):
    setup = make_setup(graph, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=seed)
    algo = LeaderElection()
    adversary = Adversary(schedule, delays or UnitDelay())
    result = run_wakeup(setup, algo, adversary, engine="async", seed=seed + 1)
    return setup, algo, result


class TestLeaderElection:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(15),
            lambda: cycle_graph(12),
            lambda: star_graph(14),
            lambda: complete_graph(15),
            lambda: random_tree(25, seed=2),
            lambda: connected_erdos_renyi(40, 0.12, seed=3),
        ],
    )
    def test_unique_leader_elected(self, graph_factory):
        g = graph_factory()
        _, algo, r = run_le(g, WakeSchedule.random_subset(g, 4, seed=1))
        assert r.all_awake
        assert algo.agreed_leader() is not None

    def test_single_candidate_wins(self):
        g = path_graph(10)
        setup, algo, _ = run_le(g, WakeSchedule.singleton(3))
        assert algo.agreed_leader() == setup.id_of(3)

    def test_spanning_tree_output(self):
        g = connected_erdos_renyi(35, 0.15, seed=5)
        _, algo, _ = run_le(g, WakeSchedule.random_subset(g, 6, seed=2))
        tree = algo.spanning_tree()
        assert tree is not None
        assert is_tree(tree)
        assert tree.num_vertices == 35
        # every tree edge is a graph edge
        for u, v in tree.edges():
            assert g.has_edge(u, v)

    def test_leader_is_root_of_tree(self):
        g = connected_erdos_renyi(30, 0.15, seed=7)
        setup, algo, _ = run_le(g, WakeSchedule.random_subset(g, 5, seed=3))
        leader = algo.agreed_leader()
        roots = [
            v for v, port in algo.tree_parent_port.items() if port is None
        ]
        assert len(roots) == 1
        assert setup.id_of(roots[0]) == leader

    def test_under_random_delays(self):
        g = connected_erdos_renyi(30, 0.15, seed=9)
        _, algo, r = run_le(
            g,
            WakeSchedule.random_subset(g, 5, seed=4),
            delays=UniformRandomDelay(seed=6),
        )
        assert r.all_awake
        assert algo.agreed_leader() is not None
        assert algo.spanning_tree() is not None

    def test_staggered_candidates(self):
        """Late-woken candidates with higher ranks overturn earlier
        announcements; agreement must still hold at quiescence."""
        g = connected_erdos_renyi(40, 0.12, seed=11)
        verts = list(g.vertices())
        schedule = WakeSchedule.staggered(
            [(0.0, verts[:2]), (40.0, verts[10:12]), (90.0, verts[20:22])]
        )
        _, algo, r = run_le(g, schedule, seed=3)
        assert r.all_awake
        assert algo.agreed_leader() is not None

    def test_announcement_overhead_is_linear(self):
        """Leader election costs at most ~n extra messages over plain
        dfs wake-up (one announcement per tree edge per completion)."""
        from repro.core.dfs_wakeup import DfsWakeUp

        g = connected_erdos_renyi(50, 0.12, seed=13)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        schedule = WakeSchedule.random_subset(g, 5, seed=2)
        adversary = Adversary(schedule, UnitDelay())
        plain = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=3)
        algo = LeaderElection()
        le = run_wakeup(setup, algo, adversary, engine="async", seed=3)
        completions = len(
            {v for v, p in algo.tree_parent_port.items() if p is None}
        )
        assert le.messages <= plain.messages + 3 * (50 - 1)


class TestFloodingBroadcast:
    def test_everyone_holds_payload(self):
        g = connected_erdos_renyi(30, 0.15, seed=1)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        algo = FloodingBroadcast(payload=99)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, algo, adversary, engine="async", seed=2)
        assert r.all_awake
        assert algo.everyone_holds_payload(setup)

    def test_multiple_sources_same_payload(self):
        g = path_graph(20)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        algo = FloodingBroadcast(payload="boot-v2")
        adversary = Adversary(
            WakeSchedule.all_at_once([0, 10, 19]), UnitDelay()
        )
        run_wakeup(setup, algo, adversary, engine="async", seed=2)
        assert algo.everyone_holds_payload(setup)


class TestTreeBroadcast:
    def test_single_source_disseminates(self):
        g = connected_erdos_renyi(40, 0.12, seed=4)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        algo = TreeBroadcast(payload=1234)
        algo.mark_source(0)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, algo, adversary, engine="async", seed=2)
        assert r.all_awake
        assert algo.everyone_holds_payload(setup)

    def test_linear_messages(self):
        n = 80
        g = random_tree(n, seed=6)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        algo = TreeBroadcast(payload=7)
        algo.mark_source(0)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, algo, adversary, engine="async", seed=2)
        assert algo.everyone_holds_payload(setup)
        assert r.messages <= 3 * (n - 1)

    def test_deep_leaf_source(self):
        g = path_graph(15)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        algo = TreeBroadcast(payload="fw-9")
        algo.mark_source(14)
        adversary = Adversary(WakeSchedule.singleton(14), UnitDelay())
        run_wakeup(setup, algo, adversary, engine="async", seed=2)
        assert algo.everyone_holds_payload(setup)

    def test_congest_cap_respected(self):
        g = star_graph(30)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        algo = TreeBroadcast(payload=3)
        algo.mark_source(0)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, algo, adversary, engine="async", seed=2)
        assert r.max_message_bits <= setup.bandwidth.cap_bits
