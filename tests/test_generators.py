"""Tests for graph generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import (
    attach_pendants,
    barbell_graph,
    binary_tree,
    caterpillar_graph,
    complete_bipartite,
    complete_graph,
    connected_erdos_renyi,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_bipartite_regular,
    random_regular,
    random_tree,
    star_graph,
    tree_from_prufer,
)
from repro.graphs.traversal import (
    diameter,
    is_bipartite,
    is_connected,
    is_tree,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 4
        assert diameter(g) == 4

    def test_path_trivial(self):
        assert path_graph(0).num_vertices == 0
        assert path_graph(1).num_edges == 0
        with pytest.raises(GraphError):
            path_graph(-1)

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(8)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))
        with pytest.raises(GraphError):
            star_graph(0)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.num_vertices == 7
        assert g.num_edges == 12
        assert is_bipartite(g)
        assert all(g.degree(v) == 4 for v in range(3))
        assert all(g.degree(v) == 3 for v in range(3, 7))

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert diameter(g) == 2 + 3
        with pytest.raises(GraphError):
            grid_graph(0, 3)

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.num_vertices == 15
        assert is_tree(g)
        assert g.degree(0) == 2

    def test_binary_tree_invalid(self):
        with pytest.raises(GraphError):
            binary_tree(-1)

    def test_barbell(self):
        g = barbell_graph(5, 3)
        assert g.num_vertices == 13
        assert is_connected(g)
        # Two K5s -> at least 2 * C(5,2) + bridge edges
        assert g.num_edges == 2 * 10 + 4

    def test_barbell_zero_bridge(self):
        g = barbell_graph(3, 0)
        assert is_connected(g)
        assert g.num_vertices == 6

    def test_lollipop(self):
        g = lollipop_graph(6, 4)
        assert g.num_vertices == 10
        assert is_connected(g)
        # footnote-3 shape: tail endpoint has degree 1
        assert g.degree(9) == 1

    def test_caterpillar(self):
        g = caterpillar_graph(4, 3)
        assert g.num_vertices == 4 + 12
        assert is_tree(g)


class TestRandomTrees:
    def test_prufer_roundtrip_known(self):
        # Prüfer sequence (3, 3, 3) is the star centered at 3 on 5 nodes.
        g = tree_from_prufer([3, 3, 3])
        assert g.degree(3) == 4

    def test_prufer_out_of_range(self):
        with pytest.raises(GraphError):
            tree_from_prufer([9])

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_random_tree_is_tree(self, seed, n):
        assert is_tree(random_tree(n, seed=seed))

    def test_random_tree_invalid(self):
        with pytest.raises(GraphError):
            random_tree(0)

    def test_random_tree_deterministic(self):
        a = random_tree(20, seed=42)
        b = random_tree(20, seed=42)
        assert a == b


class TestErdosRenyi:
    def test_p_extremes(self):
        assert erdos_renyi(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=1).num_edges == 45

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)

    def test_require_connected(self):
        g = erdos_renyi(20, 0.3, seed=3, require_connected=True)
        assert is_connected(g)

    def test_require_connected_impossible(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 0.0, seed=1, require_connected=True, max_attempts=3)

    def test_connected_variant_always_connected(self):
        for seed in range(5):
            g = connected_erdos_renyi(30, 0.01, seed=seed)
            assert is_connected(g)
            assert g.num_edges >= 29

    def test_deterministic(self):
        assert erdos_renyi(15, 0.3, seed=7) == erdos_renyi(15, 0.3, seed=7)


class TestRegular:
    @given(
        n=st.integers(4, 30),
        d=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_regular_degrees(self, n, d):
        if d >= n or (n * d) % 2 == 1:
            with pytest.raises(GraphError):
                random_regular(n, d, seed=0)
            return
        g = random_regular(n, d, seed=0)
        assert all(g.degree(v) == d for v in g.vertices())

    def test_zero_regular(self):
        g = random_regular(5, 0, seed=0)
        assert g.num_edges == 0

    def test_bipartite_regular(self):
        g = random_bipartite_regular(10, 3, seed=4)
        assert g.num_vertices == 20
        assert all(g.degree(v) == 3 for v in g.vertices())
        assert is_bipartite(g)

    def test_bipartite_regular_degree_too_big(self):
        with pytest.raises(GraphError):
            random_bipartite_regular(3, 4)


class TestAttachPendants:
    def test_basic(self):
        g = complete_graph(4)
        g2, matching = attach_pendants(g, [0, 2])
        assert g2.num_vertices == 6
        assert len(matching) == 2
        for host, pendant in matching:
            assert g2.degree(pendant) == 1
            assert g2.has_edge(host, pendant)

    def test_original_untouched(self):
        g = complete_graph(3)
        attach_pendants(g, [0])
        assert g.num_vertices == 3

    def test_unknown_host(self):
        with pytest.raises(GraphError):
            attach_pendants(complete_graph(3), [99])

    def test_custom_labels(self):
        g = path_graph(3)
        g2, matching = attach_pendants(g, [1], start_label=100)
        assert matching == [(1, 100)]


class TestHypercubeAndTorus:
    def test_hypercube_structure(self):
        from repro.graphs.generators import hypercube_graph
        from repro.graphs.traversal import diameter, is_bipartite

        g = hypercube_graph(4)
        assert g.num_vertices == 16
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.num_edges == 16 * 4 // 2
        assert diameter(g) == 4
        assert is_bipartite(g)

    def test_hypercube_trivial(self):
        from repro.graphs.generators import hypercube_graph

        assert hypercube_graph(0).num_vertices == 1
        with pytest.raises(GraphError):
            hypercube_graph(-1)

    def test_torus_structure(self):
        from repro.graphs.generators import torus_graph
        from repro.graphs.traversal import diameter

        g = torus_graph(4, 6)
        assert g.num_vertices == 24
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.num_edges == 2 * 24
        assert diameter(g) == 4 // 2 + 6 // 2

    def test_torus_minimum_size(self):
        from repro.graphs.generators import torus_graph

        with pytest.raises(GraphError):
            torus_graph(2, 5)

    def test_hypercube_neighbors_differ_by_one_bit(self):
        from repro.graphs.generators import hypercube_graph

        g = hypercube_graph(5)
        for v in g.vertices():
            for u in g.neighbors(v):
                assert bin(u ^ v).count("1") == 1


class TestRandomGeometric:
    def test_connected_by_default(self):
        from repro.graphs.generators import random_geometric

        g = random_geometric(60, radius=0.35, seed=1)
        assert g.num_vertices == 60
        assert is_connected(g)

    def test_radius_monotone_in_edges(self):
        from repro.graphs.generators import random_geometric

        sparse = random_geometric(
            50, radius=0.2, seed=5, require_connected=False
        )
        dense = random_geometric(
            50, radius=0.5, seed=5, require_connected=False
        )
        assert dense.num_edges > sparse.num_edges

    def test_radius_one_is_complete(self):
        from repro.graphs.generators import random_geometric

        g = random_geometric(20, radius=1.5, seed=2)
        assert g.num_edges == 20 * 19 // 2

    def test_tiny_radius_fails_connectivity(self):
        from repro.graphs.generators import random_geometric

        with pytest.raises(GraphError):
            random_geometric(40, radius=0.01, seed=3, max_attempts=3)

    def test_invalid_params(self):
        from repro.graphs.generators import random_geometric

        with pytest.raises(GraphError):
            random_geometric(0, 0.5)
        with pytest.raises(GraphError):
            random_geometric(5, 0.0)

    def test_deterministic(self):
        from repro.graphs.generators import random_geometric

        a = random_geometric(30, 0.4, seed=9)
        b = random_geometric(30, 0.4, seed=9)
        assert a == b

    def test_wakeup_on_geometric_workload(self):
        """The WoWLAN motivation end to end: CEN advice on a radio
        topology."""
        from repro.core.child_encoding import ChildEncodingAdvice
        from repro.graphs.generators import random_geometric
        from repro.models.knowledge import Knowledge, make_setup
        from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
        from repro.sim.runner import run_wakeup

        g = random_geometric(80, radius=0.3, seed=11)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        r = run_wakeup(
            setup, ChildEncodingAdvice(),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
            engine="async",
        )
        assert r.all_awake
        assert r.messages <= 3 * 79
