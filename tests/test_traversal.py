"""Tests for graph traversals, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    awake_distance,
    bfs_children,
    bfs_distances,
    bfs_tree,
    connected_components,
    dfs_preorder,
    diameter,
    eccentricity,
    girth,
    is_bipartite,
    is_connected,
    is_tree,
    multi_source_bfs,
    shortest_path,
)


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.vertices())
    h.add_edges_from(g.edges())
    return h


class TestBfs:
    def test_distances_path(self):
        g = path_graph(6)
        d = bfs_distances(g, 0)
        assert d == {i: i for i in range(6)}

    def test_distances_unknown_source(self):
        with pytest.raises(GraphError):
            bfs_distances(Graph(), 0)

    def test_distances_match_networkx(self):
        g = connected_erdos_renyi(40, 0.1, seed=3)
        ours = bfs_distances(g, 0)
        theirs = nx.single_source_shortest_path_length(to_nx(g), 0)
        assert ours == dict(theirs)

    def test_multi_source(self):
        g = path_graph(10)
        d = multi_source_bfs(g, [0, 9])
        assert d[5] == 4
        assert d[0] == 0 and d[9] == 0

    def test_multi_source_empty_raises(self):
        with pytest.raises(GraphError):
            multi_source_bfs(path_graph(3), [])

    def test_bfs_tree_parents(self):
        g = cycle_graph(5)
        parent, depth = bfs_tree(g, 0)
        assert parent[0] is None
        assert depth[0] == 0
        for v, p in parent.items():
            if p is not None:
                assert depth[v] == depth[p] + 1
                assert g.has_edge(v, p)

    def test_bfs_children_inverts_parent(self):
        g = grid_graph(3, 3)
        parent, _ = bfs_tree(g, 0)
        children = bfs_children(parent)
        for p, kids in children.items():
            for c in kids:
                assert parent[c] == p
        # every non-root appears exactly once as a child
        all_children = [c for kids in children.values() for c in kids]
        assert sorted(map(str, all_children)) == sorted(
            str(v) for v in g.vertices() if parent[v] is not None
        )


class TestAwakeDistance:
    def test_single_source_equals_eccentricity(self):
        g = grid_graph(4, 5)
        assert awake_distance(g, [0]) == eccentricity(g, 0)

    def test_all_awake_is_zero(self):
        g = path_graph(7)
        assert awake_distance(g, list(g.vertices())) == 0

    def test_dominating_set_is_one(self):
        g = star_graph(10)
        assert awake_distance(g, [0]) == 1

    def test_unreachable_raises(self):
        g = Graph([0, 1])
        with pytest.raises(GraphError):
            awake_distance(g, [0])

    def test_never_exceeds_diameter(self):
        g = connected_erdos_renyi(35, 0.12, seed=9)
        d = diameter(g)
        for v in list(g.vertices())[:5]:
            assert awake_distance(g, [v]) <= d


class TestComponentsAndShape:
    def test_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)], vertices=[4])
        comps = connected_components(g)
        assert sorted(sorted(map(str, c)) for c in comps) == [
            ["0", "1"],
            ["2", "3"],
            ["4"],
        ]

    def test_is_connected(self):
        assert is_connected(path_graph(5))
        assert not is_connected(Graph([0, 1]))
        assert is_connected(Graph())

    def test_is_tree(self):
        assert is_tree(random_tree(15, seed=1))
        assert is_tree(path_graph(4))
        assert not is_tree(cycle_graph(4))
        assert not is_tree(Graph([0, 1]))  # forest but disconnected
        assert is_tree(Graph())

    def test_is_bipartite(self):
        assert is_bipartite(grid_graph(3, 4))
        assert is_bipartite(cycle_graph(6))
        assert not is_bipartite(cycle_graph(5))
        assert not is_bipartite(complete_graph(3))

    def test_dfs_preorder_visits_all(self):
        g = connected_erdos_renyi(25, 0.15, seed=2)
        order = dfs_preorder(g, 0)
        assert sorted(order) == sorted(g.vertices())
        assert order[0] == 0

    def test_dfs_preorder_unknown_root(self):
        with pytest.raises(GraphError):
            dfs_preorder(Graph(), 1)


class TestDiameterGirth:
    def test_diameter_known_values(self):
        assert diameter(path_graph(6)) == 5
        assert diameter(cycle_graph(8)) == 4
        assert diameter(complete_graph(5)) == 1
        assert diameter(star_graph(9)) == 2
        assert diameter(Graph()) == 0

    def test_diameter_matches_networkx(self):
        g = connected_erdos_renyi(30, 0.12, seed=17)
        assert diameter(g) == nx.diameter(to_nx(g))

    def test_eccentricity_disconnected_raises(self):
        with pytest.raises(GraphError):
            eccentricity(Graph([0, 1]), 0)

    def test_girth_known_values(self):
        assert girth(cycle_graph(7)) == 7
        assert girth(complete_graph(4)) == 3
        assert girth(path_graph(5)) == float("inf")
        assert girth(grid_graph(3, 3)) == 4

    def test_girth_matches_networkx(self):
        for seed in range(5):
            g = connected_erdos_renyi(20, 0.2, seed=seed)
            expected = nx.girth(to_nx(g))
            assert girth(g) == expected


class TestShortestPath:
    def test_path_endpoints_and_length(self):
        g = grid_graph(4, 4)
        p = shortest_path(g, 0, 15)
        assert p[0] == 0 and p[-1] == 15
        assert len(p) - 1 == bfs_distances(g, 0)[15]
        for u, v in zip(p, p[1:]):
            assert g.has_edge(u, v)

    def test_unreachable_is_none(self):
        g = Graph([0, 1])
        assert shortest_path(g, 0, 1) is None

    def test_unknown_target_raises(self):
        with pytest.raises(GraphError):
            shortest_path(path_graph(3), 0, 99)


@given(seed=st.integers(0, 1000), n=st.integers(2, 40))
@settings(max_examples=40, deadline=None)
def test_tree_has_infinite_girth_and_n_minus_1_edges(seed, n):
    g = random_tree(n, seed=seed)
    assert g.num_edges == n - 1
    assert girth(g) == float("inf")
    assert is_connected(g)


@given(seed=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_awake_distance_monotone_in_awake_set(seed):
    """Adding awake nodes can only shrink the awake distance."""
    import random

    g = connected_erdos_renyi(25, 0.15, seed=seed)
    rng = random.Random(seed)
    verts = list(g.vertices())
    a = rng.sample(verts, 3)
    bigger = a + rng.sample([v for v in verts if v not in a], 3)
    assert awake_distance(g, bigger) <= awake_distance(g, a)
