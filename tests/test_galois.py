"""Tests for the finite-field substrate: full axiom checks on the small
fields the D(k, q) construction uses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.graphs.galois import (
    GF,
    factor_prime_power,
    find_irreducible,
    is_prime,
)

SMALL_FIELDS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27]


class TestPrimality:
    def test_primes(self):
        primes = [2, 3, 5, 7, 11, 13, 97]
        for p in primes:
            assert is_prime(p)

    def test_composites(self):
        for c in [0, 1, 4, 6, 9, 15, 91, 100]:
            assert not is_prime(c)

    def test_factor_prime_power(self):
        assert factor_prime_power(8) == (2, 3)
        assert factor_prime_power(9) == (3, 2)
        assert factor_prime_power(7) == (7, 1)
        assert factor_prime_power(16) == (2, 4)

    def test_factor_rejects_non_prime_powers(self):
        for bad in [1, 6, 10, 12, 15, 100]:
            with pytest.raises(FieldError):
                factor_prime_power(bad)


class TestIrreducible:
    @pytest.mark.parametrize("p,m", [(2, 2), (2, 3), (2, 4), (3, 2), (3, 3), (5, 2)])
    def test_has_no_roots(self, p, m):
        poly = find_irreducible(p, m)
        assert len(poly) == m + 1
        assert poly[-1] == 1  # monic
        for a in range(p):
            acc = 0
            for c in reversed(poly):
                acc = (acc * a + c) % p
            assert acc != 0


@pytest.mark.parametrize("q", SMALL_FIELDS)
class TestFieldAxioms:
    def test_additive_group(self, q):
        f = GF(q)
        for a in f.elements():
            assert f.add(a, f.zero) == a
            assert f.add(a, f.neg(a)) == f.zero
            for b in f.elements():
                assert f.add(a, b) == f.add(b, a)
                assert 0 <= f.add(a, b) < q

    def test_multiplicative_group(self, q):
        f = GF(q)
        for a in f.elements():
            assert f.mul(a, f.one) == a
            assert f.mul(a, f.zero) == f.zero
            if a != 0:
                assert f.mul(a, f.inv(a)) == f.one
        # closure + commutativity
        for a in f.elements():
            for b in f.elements():
                assert f.mul(a, b) == f.mul(b, a)

    def test_distributivity(self, q):
        f = GF(q)
        elems = list(f.elements())
        # sample cubic triples on larger fields to keep the test fast
        triples = (
            [(a, b, c) for a in elems for b in elems for c in elems]
            if q <= 9
            else [
                (a, b, c)
                for a in elems[::3]
                for b in elems[::3]
                for c in elems[::3]
            ]
        )
        for a, b, c in triples:
            assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    def test_associativity(self, q):
        f = GF(q)
        elems = list(f.elements())[: min(q, 8)]
        for a in elems:
            for b in elems:
                for c in elems:
                    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
                    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))

    def test_no_zero_divisors(self, q):
        f = GF(q)
        for a in range(1, q):
            for b in range(1, q):
                assert f.mul(a, b) != 0

    def test_sub_inverts_add(self, q):
        f = GF(q)
        for a in f.elements():
            for b in f.elements():
                assert f.sub(f.add(a, b), b) == a

    def test_div_inverts_mul(self, q):
        f = GF(q)
        for a in f.elements():
            for b in range(1, q):
                assert f.div(f.mul(a, b), b) == a


class TestFieldMisc:
    def test_inv_zero_raises(self):
        with pytest.raises(FieldError):
            GF(5).inv(0)

    def test_out_of_range_raises(self):
        f = GF(4)
        with pytest.raises(FieldError):
            f.add(4, 0)
        with pytest.raises(FieldError):
            f.mul(-1, 0)

    def test_characteristic(self):
        f = GF(8)
        # char 2: a + a = 0 for all a
        for a in f.elements():
            assert f.add(a, a) == 0
        f9 = GF(9)
        for a in f9.elements():
            assert f9.add(f9.add(a, a), a) == 0

    def test_pow(self):
        f = GF(7)
        assert f.pow(3, 0) == 1
        assert f.pow(3, 2) == 2
        assert f.pow(3, 6) == 1  # Fermat
        assert f.pow(3, -1) == f.inv(3)

    def test_fermat_on_extension(self):
        f = GF(9)
        for a in range(1, 9):
            assert f.pow(a, 8) == 1  # multiplicative group order q-1

    def test_non_prime_power_rejected(self):
        with pytest.raises(FieldError):
            GF(6)
