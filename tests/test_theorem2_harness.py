"""Tests for the Theorem-2 empirical harness (time-restricted message
complexity on 𝒢ₖ and the Lemma-5/6 indistinguishability check)."""

import math

import pytest

from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.flooding import Flooding
from repro.lowerbounds.graph_gk import build_class_gk
from repro.lowerbounds.theorem2 import (
    OneShotProbe,
    TranscriptFlooding,
    id_swap_transcript_check,
    run_time_restricted,
)


class TestOneShotProbe:
    def test_messages_exactly_sum_of_center_degrees(self):
        point = run_time_restricted(3, 3, OneShotProbe(), seed=1)
        inst_n = 27
        assert point.messages == inst_n * (3 + 1)

    def test_time_is_one_unit(self):
        point = run_time_restricted(3, 2, OneShotProbe(), seed=1)
        assert point.time <= 1.0 + 1e-9

    def test_matches_lower_bound_shape(self):
        """one-shot messages / n^{1+1/k} is a constant near 1."""
        for q in (2, 3, 4):
            point = run_time_restricted(3, q, OneShotProbe(), seed=q)
            ratio = point.messages / point.lb_bound
            assert 0.9 <= ratio <= 2.5


class TestTimeRestrictionNecessity:
    def test_dfs_beats_edge_traffic_with_more_time(self):
        """Theorem 3's algorithm undercuts the Theta(m) = Theta(n^{1+1/k})
        traffic of instant flooding, demonstrating why Theorem 2 must
        restrict time.  (At laptop scale n^{1/k} barely exceeds log n,
        so we compare against flooding, whose cost the lower bound
        matches asymptotically, rather than the leaner one-shot probe.)"""
        k, q = 3, 5  # n = 125 per side
        flood = run_time_restricted(k, q, Flooding(), seed=2)
        dfs = run_time_restricted(k, q, DfsWakeUp(), seed=2)
        total_nodes = 3 * dfs.n
        assert dfs.messages < flood.messages
        assert dfs.messages <= 8 * total_nodes * math.log(total_nodes)
        # ...but pays in time:
        assert dfs.time > 10 * flood.time

    def test_flooding_is_fast_but_heavy(self):
        k, q = 3, 3
        flood = run_time_restricted(k, q, Flooding(), seed=3)
        inst = build_class_gk(k, q)
        assert flood.messages == 2 * inst.graph.num_edges
        assert flood.time <= k + 2


class TestIdSwapIndistinguishability:
    @pytest.mark.parametrize("k,q", [(3, 2), (3, 3)])
    def test_transcripts_match_off_the_direct_edges(self, k, q):
        """Lemmas 5/6: within k+2 rounds, swapping the IDs of w* and a
        core neighbor u is invisible to the center except through the
        direct edges — the girth blocks every other information path."""
        exp = id_swap_transcript_check(k, q, seed=1)
        assert exp.transcripts_match
        assert exp.echoes_only

    def test_direct_information_differs(self):
        """Sanity: the swap is real — the center's *full* view (direct
        edges included) does change."""
        exp = id_swap_transcript_check(3, 2, seed=2)
        assert exp.direct_edge_differs

    def test_different_u_choices(self):
        inst = build_class_gk(3, 2)
        deg = inst.center_degree - 1  # core neighbors
        for u_index in range(min(deg, 2)):
            exp = id_swap_transcript_check(3, 2, seed=3, u_index=u_index)
            assert exp.transcripts_match
            assert exp.echoes_only


class TestTranscriptFlooding:
    def test_depth_limits_digest_reach(self):
        """A digest is forwarded at most depth hops: node 0's digest
        never reaches nodes at distance > depth, even though the wake
        wave itself (each node injecting its own digest) travels on."""
        from repro.models.knowledge import Knowledge, make_setup
        from repro.graphs.generators import path_graph
        from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
        from repro.sim.runner import run_wakeup

        g = path_graph(10)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(
            setup, TranscriptFlooding(depth=3), adversary,
            engine="async", seed=1, require_all_awake=False,
            record_trace=True,
        )
        origin_id = setup.id_of(0)
        receivers = {
            msg.dst
            for msg in r.trace.deliveries()
            if msg.payload[2][0] == origin_id
        }
        # nodes at distance <= 3 (plus the origin itself via echo)
        assert receivers <= {0, 1, 2, 3}
        assert 3 in receivers
        assert 4 not in receivers
