"""Hypothesis property tests on system-wide invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.flooding import Flooding
from repro.graphs.generators import connected_erdos_renyi, random_tree
from repro.graphs.traversal import multi_source_bfs
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.runner import run_wakeup

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(5, 35),
    wake_count=st.integers(1, 4),
)
@settings(**COMMON_SETTINGS)
def test_flooding_always_solves_wakeup(seed, n, wake_count):
    """Flooding solves wake-up on every connected graph and awake set."""
    g = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    rng = random.Random(seed)
    awake = rng.sample(list(g.vertices()), min(wake_count, n))
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    r = run_wakeup(setup, Flooding(), adversary, engine="async", seed=seed)
    assert r.all_awake


@given(seed=st.integers(0, 10_000), n=st.integers(5, 30))
@settings(**COMMON_SETTINGS)
def test_wake_times_lower_bounded_by_distance(seed, n):
    """Invariant: no node wakes before its hop distance (delays <= 1)."""
    g = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    awake = [next(iter(g.vertices()))]
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=seed)
    adversary = Adversary(
        WakeSchedule.all_at_once(awake), UniformRandomDelay(seed=seed)
    )
    r = run_wakeup(setup, Flooding(), adversary, engine="async", seed=seed)
    dist = multi_source_bfs(g, awake)
    for v in g.vertices():
        assert r.wake_time[v] >= 0
        # each hop takes at most 1 but at least lo > 0; distance bounds
        # from above under unit and from below under any <=1 delays:
        assert r.wake_time[v] <= dist[v] + 1e-9


@given(seed=st.integers(0, 10_000), n=st.integers(5, 28))
@settings(**COMMON_SETTINGS)
def test_dfs_always_solves_wakeup(seed, n):
    g = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    rng = random.Random(seed + 1)
    awake = rng.sample(list(g.vertices()), min(3, n))
    setup = make_setup(g, knowledge=Knowledge.KT1, seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    r = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=seed)
    assert r.all_awake


@given(seed=st.integers(0, 10_000), n=st.integers(5, 30))
@settings(**COMMON_SETTINGS)
def test_fip06_messages_never_exceed_two_per_tree_edge(seed, n):
    g = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=seed)
    adversary = Adversary(
        WakeSchedule.singleton(next(iter(g.vertices()))), UnitDelay()
    )
    r = run_wakeup(setup, Fip06TreeAdvice(), adversary, engine="async", seed=seed)
    assert r.all_awake
    assert r.messages <= 2 * (n - 1)


@given(seed=st.integers(0, 10_000), n=st.integers(5, 30))
@settings(**COMMON_SETTINGS)
def test_cen_messages_never_exceed_three_per_tree_edge(seed, n):
    g = random_tree(n, seed=seed)
    rng = random.Random(seed + 2)
    awake = rng.sample(list(g.vertices()), min(2, n))
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    r = run_wakeup(
        setup, ChildEncodingAdvice(), adversary, engine="async", seed=seed
    )
    assert r.all_awake
    assert r.messages <= 3 * (n - 1)


@given(seed=st.integers(0, 5_000))
@settings(**COMMON_SETTINGS)
def test_message_conservation(seed):
    """Every sent message is eventually received: sum(sent) ==
    sum(received) at quiescence."""
    g = connected_erdos_renyi(20, 0.2, seed=seed)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=seed)
    adversary = Adversary(
        WakeSchedule.singleton(next(iter(g.vertices()))),
        UniformRandomDelay(seed=seed),
    )
    r = run_wakeup(setup, Flooding(), adversary, engine="async", seed=seed)
    assert sum(r.metrics.sent_by.values()) == sum(
        r.metrics.received_by.values()
    )
    assert r.messages == sum(r.metrics.sent_by.values())


@given(seed=st.integers(0, 5_000))
@settings(**COMMON_SETTINGS)
def test_same_seed_same_execution(seed):
    """Full-system determinism: identical seeds give identical metrics."""
    g = connected_erdos_renyi(18, 0.2, seed=seed)
    setup = make_setup(g, knowledge=Knowledge.KT1, seed=seed)
    adversary = Adversary(
        WakeSchedule.random_subset(g, 3, seed=seed),
        UniformRandomDelay(seed=seed),
    )
    runs = [
        run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=seed)
        for _ in range(2)
    ]
    assert runs[0].messages == runs[1].messages
    assert runs[0].bits == runs[1].bits
    assert runs[0].wake_time == runs[1].wake_time


@given(seed=st.integers(0, 5_000), n=st.integers(6, 24))
@settings(**COMMON_SETTINGS)
def test_advice_decoding_never_underflows(seed, n):
    """Oracle output always decodes cleanly at every node (the schemes
    and codecs agree on the wire format)."""
    from repro.advice.bits import BitReader
    from repro.core.child_encoding import decode_cen
    from repro.core.fip06 import decode_tree_ports

    g = connected_erdos_renyi(n, 3.0 / n, seed=seed)
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=seed)
    fip = Fip06TreeAdvice().compute_advice(setup)
    cen = ChildEncodingAdvice().compute_advice(setup)
    for v in g.vertices():
        ports = decode_tree_ports(fip[v], g.degree(v))
        assert all(1 <= p <= g.degree(v) for p in ports)
        parent, fc, nxt = decode_cen(cen[v])
        if parent is not None:
            assert 1 <= parent <= g.degree(v)
