"""Smoke tests for the repository scripts."""

import json
import pathlib
import subprocess
import sys

SCRIPTS = pathlib.Path(__file__).resolve().parent.parent / "scripts"


def run_script(name: str, *args: str, timeout: int = 400):
    result = subprocess.run(
        [sys.executable, str(SCRIPTS / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    return result


class TestGenApiDocs:
    def test_generates_markdown(self, tmp_path):
        out = tmp_path / "api.md"
        result = run_script("gen_api_docs.py", "--out", str(out))
        assert result.returncode == 0, result.stderr[-1000:]
        text = out.read_text()
        assert "# API reference" in text
        assert "`repro.sim.async_engine`" in text
        assert "`repro.core.dfs_wakeup`" in text

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.md", tmp_path / "b.md"
        assert run_script("gen_api_docs.py", "--out", str(a)).returncode == 0
        assert run_script("gen_api_docs.py", "--out", str(b)).returncode == 0
        assert a.read_text() == b.read_text()


class TestRegenExperiments:
    def test_writes_result_files(self, tmp_path):
        result = run_script(
            "regen_experiments.py", "--outdir", str(tmp_path)
        )
        assert result.returncode == 0, result.stderr[-1000:]
        files = sorted(p.name for p in tmp_path.glob("*.json"))
        assert "table1.json" in files
        assert "theorem1_frontier.json" in files
        payload = json.loads((tmp_path / "corollary1.json").read_text())
        assert payload["experiment"] == "corollary1"
        assert len(payload["records"]) == 4

    def test_compare_mode_clean_on_rerun(self, tmp_path):
        first = run_script("regen_experiments.py", "--outdir", str(tmp_path))
        assert first.returncode == 0
        second = run_script(
            "regen_experiments.py", "--outdir", str(tmp_path), "--compare"
        )
        assert second.returncode == 0, second.stdout[-1000:]
        assert "DRIFT" not in second.stdout
