"""Tests for the telemetry layer (`repro.obs`) and its integrations.

The guarantees under test, matching docs/observability.md:

* **schema** — every event kind round-trips through the JSONL
  serialization and validates; malformed events are rejected loudly;
* **zero overhead** — with the default :data:`NULL_RECORDER`, run and
  sweep outputs are bit-identical to a run with a recorder attached
  (telemetry observes, it never participates);
* **phases** — algorithm-declared ``ctx.phase(...)`` spans attribute
  deterministic message counts, survive the lean/IPC path, and every
  executed cell gets at least the engines' implicit "engine" phase;
* **lifecycle** — the executor frames each cell with ``cell_start``
  and exactly one terminal event, including injected failures,
  crashes, and timeouts;
* **flight recorder** — bounded traces keep a tail, and a failing
  cell's record carries it.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.telemetry import (
    cell_summary_table,
    event_census,
    load_events,
    phase_profile_table,
    read_events,
    render_telemetry_report,
    runtime_outliers,
)
from repro.core.registry import get_algorithm
from repro.experiments.parallel import CellSpec, ParallelSweepExecutor, run_cell
from repro.graphs.generators import connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup
from repro.obs import (
    EVENT_KINDS,
    NULL_RECORDER,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    SweepProgress,
    make_event,
    parse_line,
    validate_event,
)
from repro.obs.events import serialize_event
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.node import NodeContext
from repro.sim.runner import WakeUpResult, run_wakeup
from repro.sim.trace import Trace

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "scripts" / "check_telemetry.py"

# Minimal valid payloads, one per event kind — the schema round-trip
# fixture.  Every required field of EVENT_KINDS must appear here (the
# completeness test below enforces it).
SAMPLE_FIELDS = {
    "sweep_start": {"cells": 4, "workers": 2},
    "sweep_end": {"cells": 4, "executed": 3, "cached": 1, "ok": 4,
                  "failed": 0, "wall_time": 0.5},
    "cell_start": {"key": "abc", "algorithm": "flooding", "n": 16,
                   "trial": 0, "seed": 7, "engine": "async",
                   "cached": False},
    "cell_end": {"key": "abc", "status": "ok", "cached": False,
                 "duration": 0.01},
    "cell_retry": {"key": "abc", "attempt": 2},
    "cell_timeout": {"key": "abc", "duration": 1.5, "budget": 1.0},
    "run_start": {"algorithm": "flooding", "engine": "async", "n": 16,
                  "seed": 7},
    "run_end": {"algorithm": "flooding", "engine": "async", "n": 16,
                "messages": 64, "time": 3.0, "all_awake": True},
    "phase_start": {"phase": "engine"},
    "phase_end": {"phase": "engine", "elapsed": 0.004, "messages": 64,
                  "entries": 1},
    "engine_step": {"events": 1000, "now": 2.5, "awake": 12},
    "topology_stats": {"build": 2, "hit_mem": 4, "hit_disk": 0},
    "check_stats": {"algorithm": "flooding", "schedules": 120,
                    "states": 340, "pruned_sleep": 18, "pruned_state": 44,
                    "violations": 0, "max_depth": 12, "completed": True},
    "worstcase_stats": {"algorithm": "flooding", "objective": "time",
                        "evaluations": 61, "best_score": 4.999,
                        "policy": "feed-awake"},
    "opt_generation": {"optimizer": "cem", "generation": 3,
                       "population": 16, "best": 4.75, "incumbent": 4.999},
    "shrink_stats": {"invariant": "fifo-per-channel", "tests": 37,
                     "from_len": 12, "to_len": 2, "reduction": 10},
    "metrics_snapshot": {
        "counters": {'repro_runs_total{algorithm="flooding"}': 2},
        "gauges": {"repro_executor_workers": 2},
        "histograms": {
            "repro_run_messages": {
                "le": [1.0, 2.0], "counts": [1, 0, 1],
                "sum": 65.0, "count": 2,
            }
        },
    },
    "job_queued": {"job": "j0123abcd", "job_kind": "sweep",
                   "queue_depth": 3},
    "job_start": {"job": "j0123abcd", "job_kind": "sweep"},
    "job_end": {"job": "j0123abcd", "status": "done", "duration": 0.8},
    "job_rejected": {"job": "j0123abcd", "reason": "queue full"},
}


def _small_run(recorder=None, n=24, algorithm="flooding", **setup_kw):
    algo = get_algorithm(algorithm)
    graph = connected_erdos_renyi(n, 4.0 / (n - 1), seed=3)
    knowledge = Knowledge.KT1 if algo.requires_kt1 else Knowledge.KT0
    bandwidth = "CONGEST" if algo.congest_safe else "LOCAL"
    setup = make_setup(
        graph, knowledge=knowledge, bandwidth=bandwidth, seed=5, **setup_kw
    )
    v0 = next(iter(graph.vertices()))
    adversary = Adversary(WakeSchedule.all_at_once([v0]), UnitDelay())
    return run_wakeup(
        setup, algo, adversary, engine="async", seed=9, recorder=recorder
    )


# ----------------------------------------------------------------------
# Event schema
# ----------------------------------------------------------------------
class TestEventSchema:
    def test_samples_cover_every_kind(self):
        assert set(SAMPLE_FIELDS) == set(EVENT_KINDS)

    @pytest.mark.parametrize("kind", sorted(EVENT_KINDS))
    def test_round_trip(self, kind):
        event = make_event(kind, **SAMPLE_FIELDS[kind])
        assert validate_event(event) == []
        back = parse_line(serialize_event(event))
        assert back == json.loads(json.dumps(event))
        assert validate_event(back) == []
        assert back["kind"] == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry event"):
            make_event("nope")

    @pytest.mark.parametrize("kind", sorted(EVENT_KINDS))
    def test_missing_required_field_rejected(self, kind):
        fields = dict(SAMPLE_FIELDS[kind])
        dropped, _ = fields.popitem()
        with pytest.raises(ValueError, match=dropped):
            make_event(kind, **fields)

    def test_validate_flags_bad_events(self):
        assert validate_event([]) != []
        assert validate_event({"kind": "nope"}) != []
        event = make_event("cell_end", **SAMPLE_FIELDS["cell_end"])
        event["status"] = "exploded"
        assert any("invalid status" in e for e in validate_event(event))
        event = make_event("run_start", **SAMPLE_FIELDS["run_start"])
        event["schema"] = 999
        assert any("schema version" in e for e in validate_event(event))

    def test_parse_line_rejects_non_objects(self):
        with pytest.raises(ValueError):
            parse_line("[1, 2]")


# ----------------------------------------------------------------------
# Recorders
# ----------------------------------------------------------------------
class TestRecorders:
    def test_memory_recorder_collects(self):
        rec = MemoryRecorder()
        rec.emit("phase_start", phase="a")
        rec.emit("phase_end", phase="a", elapsed=0.1, messages=2, entries=1)
        assert rec.kinds() == ["phase_start", "phase_end"]
        assert rec.of_kind("phase_end")[0]["messages"] == 2

    def test_jsonl_recorder_writes_valid_lines(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        with JsonlRecorder(path) as rec:
            rec.emit("run_start", **SAMPLE_FIELDS["run_start"])
            rec.emit("run_end", **SAMPLE_FIELDS["run_end"])
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert validate_event(parse_line(line)) == []
        rec.close()  # idempotent

    def test_jsonl_recorder_accepts_stream(self):
        buf = io.StringIO()
        rec = JsonlRecorder(buf)
        rec.emit("phase_start", phase="x")
        rec.close()
        assert parse_line(buf.getvalue())["phase"] == "x"
        assert not buf.closed  # caller-owned stream stays open

    def test_instruments(self):
        rec = MemoryRecorder()
        rec.counter("cells", 2)
        rec.counter("cells")
        rec.gauge("workers", 4)
        with rec.timer("oracle"):
            pass
        snap = rec.snapshot()
        assert snap["counters"]["cells"] == 3
        assert snap["gauges"]["workers"] == 4
        assert snap["counters"]["oracle"] >= 0

    def test_null_recorder_is_inert(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.emit("not-even-a-kind", bogus=1)  # never validates, never raises
        rec.counter("x")
        rec.gauge("y", 1)
        assert rec.snapshot() == {"counters": {}, "gauges": {}}


# ----------------------------------------------------------------------
# Zero-overhead conformance: recorder on vs off, bit-identical outputs
# ----------------------------------------------------------------------
class TestNullRecorderConformance:
    def test_run_result_identical_with_and_without_recorder(self):
        plain = _small_run(recorder=None)
        observed = _small_run(recorder=MemoryRecorder())
        assert plain.summary() == observed.summary()
        assert plain.wake_time == observed.wake_time
        assert plain.metrics.phase_messages == observed.metrics.phase_messages

    def test_sweep_rows_identical_with_and_without_recorder(self):
        cells = [
            CellSpec(
                algorithm="flooding", n=n, trial=t, seed=1,
                engine="async", knowledge="KT0", bandwidth="CONGEST",
                workload={"kind": "er_single_wake", "avg_degree": 4.0,
                          "seed": 1},
            )
            for n in (16, 24)
            for t in (0, 1)
        ]
        plain = ParallelSweepExecutor(workers=0, use_cache=False).run(cells)
        rec = MemoryRecorder()
        observed = ParallelSweepExecutor(
            workers=0, use_cache=False, recorder=rec
        ).run(cells)
        for p, o in zip(plain, observed):
            assert p.result.summary() == o.result.summary()
            assert p.record().keys() == o.record().keys()
        assert rec.of_kind("sweep_end")  # and telemetry actually flowed

    def test_run_emits_lifecycle_events(self):
        rec = MemoryRecorder()
        _small_run(recorder=rec)
        kinds = rec.kinds()
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "phase_end" in kinds
        end = rec.of_kind("run_end")[0]
        assert end["all_awake"] is True
        assert end["messages"] > 0


# ----------------------------------------------------------------------
# Phase hooks
# ----------------------------------------------------------------------
class TestPhaseHooks:
    def test_engine_phase_always_present(self):
        result = _small_run()
        profile = result.phase_profile()
        assert "engine" in profile
        assert profile["engine"]["messages"] == result.messages
        assert profile["engine"]["entries"] == 1

    def test_dfs_declares_and_records_its_phases(self):
        result = _small_run(algorithm="dfs-rank")
        profile = result.phase_profile()
        algo = get_algorithm("dfs-rank")
        assert algo.phases == ("rank-draw", "dfs-token")
        for phase in algo.phases:
            assert phase in profile
        # Message attribution is deterministic: every DFS send happens
        # inside a dfs-token span.
        assert profile["dfs-token"]["messages"] == result.messages
        assert profile["rank-draw"]["messages"] == 0

    def test_spanner_separates_decode_from_probe_traffic(self):
        result = _small_run(algorithm="log-spanner-advice")
        profile = result.phase_profile()
        assert profile["advice-decode"]["messages"] == 0
        assert profile["advice-decode"]["entries"] == result.n
        assert profile["spanner-probe"]["messages"] == result.messages

    def test_phase_events_emitted_when_recorder_enabled(self):
        rec = MemoryRecorder()
        result = _small_run(recorder=rec, algorithm="dfs-rank")
        ends = rec.of_kind("phase_end")
        by_phase = {}
        for e in ends:
            by_phase.setdefault(e["phase"], 0)
            by_phase[e["phase"]] += e["messages"]
        assert by_phase["dfs-token"] == result.messages
        starts = rec.of_kind("phase_start")
        assert len(starts) == len(ends)

    def test_ctx_phase_is_noop_outside_engine(self):
        graph = connected_erdos_renyi(8, 0.6, seed=1)
        setup = make_setup(graph, knowledge=Knowledge.KT0,
                           bandwidth="LOCAL", seed=2)
        import random

        ctx = NodeContext(next(iter(graph.vertices())), setup,
                          random.Random(0))
        with ctx.phase("anything"):
            pass  # no tracker attached: must not raise


# ----------------------------------------------------------------------
# Satellite: wake causes and phases survive compact/lean serialization
# ----------------------------------------------------------------------
class TestLeanRoundTrip:
    def test_wake_cause_counts_survive_compact(self):
        result = _small_run(n=30)
        causes = result.metrics.wake_cause_counts()
        assert causes == {"adversary": 1, "message": 29}
        compacted = result.metrics.compact()
        assert compacted.wake_cause_counts() == causes

    def test_wake_causes_and_phases_survive_lean_dict(self):
        result = _small_run(algorithm="dfs-rank")
        payload = json.loads(json.dumps(result.to_lean_dict()))
        back = WakeUpResult.from_lean_dict(payload)
        assert back.metrics.wake_cause_counts() == (
            result.metrics.wake_cause_counts()
        )
        original = result.phase_profile()
        restored = back.phase_profile()
        assert set(restored) == set(original)
        for name in original:
            assert restored[name]["messages"] == original[name]["messages"]
            assert restored[name]["entries"] == original[name]["entries"]

    def test_wake_causes_survive_ipc_cell_path(self):
        spec = CellSpec(
            algorithm="flooding", n=20, seed=2, engine="async",
            knowledge="KT0", bandwidth="CONGEST",
            workload={"kind": "er_single_wake", "avg_degree": 4.0,
                      "seed": 2},
        )
        payload = json.loads(json.dumps(run_cell(spec, None)))
        assert payload["ok"]
        back = WakeUpResult.from_lean_dict(payload["result"])
        counts = back.metrics.wake_cause_counts()
        assert counts["adversary"] == 1
        assert counts["adversary"] + counts["message"] == 20


# ----------------------------------------------------------------------
# Executor lifecycle telemetry
# ----------------------------------------------------------------------
def _flood_cells(n_values=(16, 24), trials=(0,), seed=1):
    return [
        CellSpec(
            algorithm="flooding", n=n, trial=t, seed=seed,
            engine="async", knowledge="KT0", bandwidth="CONGEST",
            workload={"kind": "er_single_wake", "avg_degree": 4.0,
                      "seed": seed},
        )
        for n in n_values
        for t in trials
    ]


HERE = "tests.test_parallel_executor"


class TestExecutorTelemetry:
    def test_sweep_frames_and_per_cell_lifecycle(self):
        rec = MemoryRecorder()
        cells = _flood_cells()
        ParallelSweepExecutor(workers=0, use_cache=False,
                              recorder=rec).run(cells)
        kinds = rec.kinds()
        assert kinds[0] == "sweep_start"
        assert kinds[-1] == "sweep_end"
        assert len(rec.of_kind("cell_start")) == len(cells)
        assert len(rec.of_kind("cell_end")) == len(cells)
        # >= 1 aggregate phase_end per executed cell (the acceptance
        # criterion), keyed to its cell.
        started = {e["key"] for e in rec.of_kind("cell_start")}
        phase_keys = {e["key"] for e in rec.of_kind("phase_end")}
        assert started == phase_keys
        for e in rec.of_kind("phase_end"):
            assert e["aggregate"] is True
        for e in rec.of_kind("sweep_end"):
            assert e["executed"] == len(cells)

    def test_cached_cells_still_replay_phase_profiles(self, tmp_path):
        cells = _flood_cells()
        kw = dict(workers=0, cache_dir=tmp_path, use_cache=True)
        ParallelSweepExecutor(**kw).run(cells)  # cold, fills cache
        rec = MemoryRecorder()
        ParallelSweepExecutor(**kw, recorder=rec).run(cells)  # warm
        assert all(e["cached"] for e in rec.of_kind("cell_start"))
        assert len(rec.of_kind("phase_end")) >= len(cells)

    def test_every_event_validates(self):
        rec = MemoryRecorder()
        ParallelSweepExecutor(workers=0, use_cache=False,
                              recorder=rec).run(_flood_cells())
        for event in rec.events:
            assert validate_event(event) == []

    def test_progress_counts_cells(self):
        buf = io.StringIO()
        progress = SweepProgress(stream=buf, non_tty_interval=0.0)
        ParallelSweepExecutor(workers=0, use_cache=False,
                              progress=progress).run(_flood_cells())
        line = progress.render_line()
        assert line.startswith("cells 2/2 (ok 2, failed 0, cached 0)")
        assert "slowest: n=" in line
        assert buf.getvalue()  # something was rendered

    def test_progress_first_tick_has_no_rate(self):
        # Regression: render_line used to divide by a near-zero elapsed
        # on the first tick, printing absurd rates (1e9 cell/s) and an
        # eta of 0s.  With nothing done — or with a tick landing inside
        # the clamp window — both render as "?".
        import time

        buf = io.StringIO()
        progress = SweepProgress(stream=buf, non_tty_interval=0.0)
        progress.start(total=5, workers=2)
        line = progress.render_line()
        assert "? cell/s" in line
        assert "eta ?" in line
        # A cell completing within the clamp window still has no rate.
        progress._done = 1
        progress._t0 = time.perf_counter()
        line = progress.render_line()
        assert "? cell/s" in line
        assert "eta ?" in line


class TestFaultInjectionTelemetry:
    def test_timeout_emits_terminal_cell_timeout(self):
        rec = MemoryRecorder()
        cells = [
            _flood_cells()[0],
            CellSpec(
                algorithm=f"{HERE}:SleeperAlgo", n=12, seed=1,
                engine="async", knowledge="KT0", bandwidth="CONGEST",
                workload={"kind": "er_single_wake", "avg_degree": 3.0,
                          "seed": 1},
            ),
        ]
        out = ParallelSweepExecutor(
            workers=2, use_cache=False, cell_timeout=1.0, recorder=rec
        ).run(cells)
        assert [o.status for o in out] == ["ok", "timeout"]
        timeouts = rec.of_kind("cell_timeout")
        assert len(timeouts) == 1
        assert timeouts[0]["budget"] == 1.0
        assert timeouts[0]["duration"] >= 1.0
        # the timed-out cell reaches exactly one terminal event
        key = timeouts[0]["key"]
        cell_ends = [e for e in rec.of_kind("cell_end") if e["key"] == key]
        assert cell_ends == []

    def test_wakeup_failure_emits_failed_cell_end(self):
        rec = MemoryRecorder()
        cells = [
            CellSpec(
                algorithm=f"{HERE}:SilentAlgo", n=12, seed=1,
                engine="async", knowledge="KT0", bandwidth="CONGEST",
                workload={"kind": "er_single_wake", "avg_degree": 3.0,
                          "seed": 1},
            )
        ]
        out = ParallelSweepExecutor(
            workers=0, use_cache=False, recorder=rec
        ).run(cells)
        assert out[0].status == "failed"
        ends = rec.of_kind("cell_end")
        assert len(ends) == 1
        assert ends[0]["status"] == "failed"
        assert "never woke up" in ends[0]["error"]

    def test_worker_crash_emits_retry_then_crashed(self):
        rec = MemoryRecorder()
        cells = [
            _flood_cells()[0],
            CellSpec(
                algorithm=f"{HERE}:KillerAlgo", n=12, seed=1,
                engine="async", knowledge="KT0", bandwidth="CONGEST",
                workload={"kind": "er_single_wake", "avg_degree": 3.0,
                          "seed": 1},
            ),
        ]
        out = ParallelSweepExecutor(
            workers=2, use_cache=False, recorder=rec
        ).run(cells)
        statuses = {o.spec.algorithm: o.status for o in out}
        assert statuses[f"{HERE}:KillerAlgo"] == "crashed"
        assert rec.of_kind("cell_retry")
        crashed = [
            e for e in rec.of_kind("cell_end") if e["status"] == "crashed"
        ]
        assert len(crashed) == 1
        assert crashed[0]["attempts"] >= 2


# ----------------------------------------------------------------------
# Flight recorder (bounded Trace) on the cell crash path
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_failed_cell_record_carries_trace_tail(self):
        spec = CellSpec(
            algorithm=f"{HERE}:SilentAlgo", n=12, seed=1,
            engine="async", knowledge="KT0", bandwidth="CONGEST",
            workload={"kind": "er_single_wake", "avg_degree": 3.0,
                      "seed": 1},
            flight_recorder=8,
        )
        out = ParallelSweepExecutor(workers=0, use_cache=False).run([spec])
        assert out[0].status == "failed"
        assert out[0].trace_tail  # the wake of the one adversary node
        assert any("wake" in line for line in out[0].trace_tail)
        assert "trace_tail" in out[0].record()

    def test_flight_recorder_crosses_worker_boundary(self):
        spec = CellSpec(
            algorithm=f"{HERE}:SilentAlgo", n=12, seed=1,
            engine="async", knowledge="KT0", bandwidth="CONGEST",
            workload={"kind": "er_single_wake", "avg_degree": 3.0,
                      "seed": 1},
            flight_recorder=8,
        )
        out = ParallelSweepExecutor(workers=2, use_cache=False).run(
            [spec, _flood_cells()[0]]
        )
        failed = [o for o in out if not o.ok]
        assert failed and failed[0].trace_tail

    def test_successful_cells_have_no_tail(self):
        out = ParallelSweepExecutor(workers=0, use_cache=False).run(
            [
                CellSpec(
                    algorithm="flooding", n=16, seed=1, engine="async",
                    knowledge="KT0", bandwidth="CONGEST",
                    workload={"kind": "er_single_wake",
                              "avg_degree": 4.0, "seed": 1},
                    flight_recorder=8,
                )
            ]
        )
        assert out[0].ok
        assert out[0].trace_tail is None
        assert "trace_tail" not in out[0].record()


# ----------------------------------------------------------------------
# Analysis: report aggregation
# ----------------------------------------------------------------------
@pytest.fixture()
def telemetry_file(tmp_path):
    path = tmp_path / "events.jsonl"
    rec = JsonlRecorder(path)
    ParallelSweepExecutor(workers=0, use_cache=False, recorder=rec).run(
        _flood_cells(n_values=(16, 24), trials=(0, 1))
    )
    rec.close()
    return path


def _truncate_mid_record(path):
    """Chop the final JSONL record in half, as a killed writer does."""
    data = path.read_bytes()
    body = data.rstrip(b"\n")
    last_nl = body.rfind(b"\n")
    cut = last_nl + 1 + (len(body) - last_nl - 1) // 2
    path.write_bytes(data[:cut])
    return data[cut:]


class TestAnalysis:
    def test_load_events_skips_torn_line(self, telemetry_file):
        with open(telemetry_file, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "cell_end", "trunc')
        events = load_events(telemetry_file)
        assert all(validate_event(e) == [] for e in events)
        with pytest.raises(ValueError, match="line"):
            load_events(telemetry_file, strict=True)

    def test_census_and_tables(self, telemetry_file):
        events = load_events(telemetry_file)
        census = event_census(events)
        assert census["cell_start"] == 4
        assert census["sweep_end"] == 1
        profile = phase_profile_table(events)
        assert {r["n"] for r in profile} == {16, 24}
        assert all(r["phase"] == "engine" for r in profile)
        summary = cell_summary_table(events)
        assert [r["n"] for r in summary] == [16, 24]
        assert all(r["ok"] == 2 for r in summary)

    def test_outlier_detection(self):
        def cell(n, key, duration):
            return make_event(
                "cell_end", key=key, status="ok", cached=False,
                duration=duration, n=n,
            )

        events = [cell(16, f"k{i}", 0.01) for i in range(4)]
        events.append(cell(16, "slow", 0.5))
        outliers = runtime_outliers(events)
        assert len(outliers) == 1
        assert outliers[0]["key"] == "slow"
        assert outliers[0]["x_median"] > 4
        # singletons are never outliers against themselves
        assert runtime_outliers([cell(99, "only", 5.0)]) == []

    def test_render_report(self, telemetry_file):
        report = render_telemetry_report(telemetry_file)
        assert "Telemetry events" in report
        assert "Phase profile" in report
        assert "Cells by size" in report
        assert "runtime outliers: none" in report
        assert "skipped" not in report

    def test_read_events_counts_mid_record_truncation(self, telemetry_file):
        # Regression: a record cut in half (writer killed mid-write)
        # used to abort the whole load; it must skip-and-count instead.
        lost = _truncate_mid_record(telemetry_file)
        assert lost  # the cut really removed bytes from the last record
        events, skipped = read_events(telemetry_file)
        assert skipped == 1
        assert events and all(validate_event(e) == [] for e in events)
        with pytest.raises(ValueError, match="line"):
            read_events(telemetry_file, strict=True)

    def test_report_survives_truncated_tail_and_says_so(
        self, telemetry_file, capsys
    ):
        from repro.__main__ import main

        _truncate_mid_record(telemetry_file)
        report = render_telemetry_report(telemetry_file)
        assert "skipped 1 malformed line(s)" in report
        assert "torn tail" in report
        # and the CLI path exits 0 rather than crashing on the tail
        assert main(["report", "--telemetry", str(telemetry_file)]) == 0
        assert "skipped 1 malformed line(s)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# scripts/check_telemetry.py
# ----------------------------------------------------------------------
class TestCheckTelemetryScript:
    def run_checker(self, *args):
        return subprocess.run(
            [sys.executable, str(CHECKER), *args],
            capture_output=True, text=True, timeout=120,
        )

    def test_valid_stream_passes(self, telemetry_file):
        proc = self.run_checker(str(telemetry_file), "--min-cells", "4")
        assert proc.returncode == 0, proc.stderr
        assert "4 cells" in proc.stdout

    def test_orphan_terminal_event_fails(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        event = make_event("cell_end", **SAMPLE_FIELDS["cell_end"])
        path.write_text(serialize_event(event) + "\n")
        proc = self.run_checker(str(path))
        assert proc.returncode == 1
        assert "without a cell_start" in proc.stderr

    def test_missing_terminal_event_fails(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        event = make_event("cell_start", **SAMPLE_FIELDS["cell_start"])
        path.write_text(serialize_event(event) + "\n")
        proc = self.run_checker(str(path))
        assert proc.returncode == 1
        assert "terminal events" in proc.stderr

    def test_schema_violation_fails(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "made-up", "schema": 1, "ts": 0}\n')
        proc = self.run_checker(str(path))
        assert proc.returncode == 1
        assert "unknown kind" in proc.stderr

    def test_min_cells_enforced(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        proc = self.run_checker(str(path), "--min-cells", "1")
        assert proc.returncode == 1

    def test_torn_tail_is_tolerated_and_counted(self, telemetry_file):
        # Regression: a final record cut mid-write used to fail the
        # checker; it must pass, count the tail, and say so.
        _truncate_mid_record(telemetry_file)
        proc = self.run_checker(str(telemetry_file))
        assert proc.returncode == 0, proc.stderr
        assert "skipped 1 torn tail line(s)" in proc.stdout

    def test_mid_stream_corruption_still_fails(self, telemetry_file):
        lines = telemetry_file.read_text(encoding="utf-8").splitlines()
        lines.insert(len(lines) // 2, '{"kind": "cell_end", "trunc')
        telemetry_file.write_text(
            "\n".join(lines) + "\n", encoding="utf-8"
        )
        proc = self.run_checker(str(telemetry_file))
        assert proc.returncode == 1
        assert "unparseable" in proc.stderr


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliTelemetry:
    def test_sweep_telemetry_then_report(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "sweep.jsonl"
        code = main(
            [
                "sweep", "flooding", "--sizes", "16", "24",
                "--trials", "1", "--no-cache", "--progress", "off",
                "--telemetry", str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        events = load_events(path, strict=True)
        kinds = {e["kind"] for e in events}
        assert {"sweep_start", "cell_start", "phase_end", "cell_end",
                "sweep_end"} <= kinds
        assert main(["report", "--telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Phase profile" in out
        assert "Cells by size" in out

    def test_run_telemetry(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "run.jsonl"
        code = main(
            [
                "run", "dfs-rank", "--n", "24", "--seed", "1",
                "--telemetry", str(path),
            ]
        )
        assert code == 0
        events = load_events(path, strict=True)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert {e.get("phase") for e in events if e["kind"] == "phase_end"} >= {
            "engine", "dfs-token", "rank-draw",
        }

    def test_report_missing_file_fails_cleanly(self, capsys):
        from repro.__main__ import main

        assert main(["report", "--telemetry", "/nonexistent.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestScheduleCheckSection:
    """The model checker's kinds flow into the telemetry report."""

    def test_check_stats_renders_in_report(self, tmp_path):
        from repro.__main__ import main
        from repro.analysis.telemetry import (
            render_telemetry_report,
            schedule_check_table,
        )

        path = tmp_path / "check.jsonl"
        code = main(
            [
                "check", "flooding", "--n", "3", "--graph", "cycle",
                "--telemetry", str(path),
            ]
        )
        assert code == 0
        events = load_events(path, strict=True)
        rows = schedule_check_table(events)
        assert [r["op"] for r in rows] == ["explore"]
        assert rows[0]["violations"] == 0
        report = render_telemetry_report(path)
        assert "Schedule exploration" in report

    def test_all_three_kinds_make_rows(self):
        from repro.obs.events import make_event
        from repro.analysis.telemetry import schedule_check_table

        events = [
            make_event(
                "check_stats", algorithm="flooding", schedules=4,
                states=10, pruned_sleep=1, pruned_state=2, violations=0,
                max_depth=3, completed=True,
            ),
            make_event(
                "worstcase_stats", algorithm="flooding",
                objective="time", evaluations=7, best_score=2.5,
                policy="feed-awake",
            ),
            make_event(
                "shrink_stats", invariant="fifo-per-channel", tests=12,
                from_len=9, to_len=2, reduction=0.7778,
            ),
        ]
        rows = schedule_check_table(events)
        assert [r["op"] for r in rows] == ["explore", "worstcase", "shrink"]
        assert rows[0]["pruned"] == 3
        assert "feed-awake" in rows[1]["note"]
        assert "9 -> 2" in rows[2]["note"]

    def test_streams_without_check_kinds_stay_empty(self):
        from repro.analysis.telemetry import schedule_check_table

        assert schedule_check_table([{"kind": "run_start"}]) == []


class TestMetricsSnapshotSection:
    """The 'Metrics (last snapshot)' table in ``repro report``."""

    def _snapshot_event(self, runs=2):
        from repro.obs.events import make_event

        return make_event(
            "metrics_snapshot",
            counters={'repro_runs_total{algorithm="flooding"}': runs},
            gauges={"repro_executor_workers": 2},
            histograms={
                "repro_run_messages": {
                    "le": [10.0, 100.0],
                    "counts": [1, 1, 0],
                    "sum": 58.0,
                    "count": 2,
                }
            },
        )

    def test_rows_summarize_last_snapshot(self):
        from repro.analysis.telemetry import metrics_snapshot_table

        rows = metrics_snapshot_table(
            [self._snapshot_event(runs=1), self._snapshot_event(runs=5)]
        )
        by_name = {r["instrument"]: r for r in rows}
        # the *last* snapshot wins
        assert by_name["repro_runs_total"]["value"] == 5
        assert by_name["repro_executor_workers"]["type"] == "gauge"
        hist = by_name["repro_run_messages"]
        assert hist["value"] == 2  # observation count
        assert hist["p50"] != ""  # single-series family gets quantiles

    def test_report_renders_metrics_section(self, tmp_path):
        import json

        from repro.analysis.telemetry import render_telemetry_report

        stream = tmp_path / "t.jsonl"
        stream.write_text(json.dumps(self._snapshot_event()) + "\n")
        out = render_telemetry_report(stream)
        assert "Metrics (last snapshot)" in out
        assert "repro_runs_total" in out

    def test_streams_without_snapshots_stay_empty(self):
        from repro.analysis.telemetry import metrics_snapshot_table

        assert metrics_snapshot_table([{"kind": "run_start"}]) == []
