"""Tests for the Theorem-1 witness prefix-advice scheme."""

from collections import Counter

import pytest

from repro.core.prefix_advice import (
    PrefixAdvice,
    decode_prefix_advice,
    encode_prefix_advice,
    port_bucket,
)
from repro.lowerbounds.graph_g import build_class_g
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


class TestEncoding:
    def test_roundtrip(self):
        bits = encode_prefix_advice(False, 33, 3, [5, 17])
        is_b, beta, buckets = decode_prefix_advice(bits, 33)
        assert not is_b
        assert beta == 3
        assert buckets == [port_bucket(5, 33, 3), port_bucket(17, 33, 3)]

    def test_broadcaster_flag(self):
        bits = encode_prefix_advice(True, 10, 0, [])
        is_b, _, buckets = decode_prefix_advice(bits, 10)
        assert is_b and buckets == []

    def test_large_beta_pins_unique_bucket(self):
        # With 2^beta >= degree every bucket holds at most one port.
        degree, beta = 13, 6
        buckets = [port_bucket(p, degree, beta) for p in range(1, degree + 1)]
        assert len(set(buckets)) == degree

    def test_bucket_sizes_balanced(self):
        degree, beta = 33, 2
        counts = Counter(
            port_bucket(p, degree, beta) for p in range(1, degree + 1)
        )
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            PrefixAdvice(beta=-1)


class TestOnClassG:
    def run_g(self, n, beta, seed=0):
        inst = build_class_g(n)
        setup = inst.make_setup(seed=seed)
        adversary = Adversary(
            WakeSchedule.all_at_once(inst.centers), UnitDelay()
        )
        result = run_wakeup(
            setup, PrefixAdvice(beta=beta), adversary, engine="async",
            seed=seed + 1,
        )
        return inst, result

    @pytest.mark.parametrize("beta", [0, 2, 5])
    def test_solves_wakeup_on_g(self, beta):
        _, r = self.run_g(16, beta)
        assert r.all_awake

    def test_messages_decrease_geometrically_in_beta(self):
        msgs = []
        for beta in (0, 1, 2, 3):
            _, r = self.run_g(32, beta, seed=beta)
            msgs.append(r.messages)
        assert msgs == sorted(msgs, reverse=True)
        # beta=3 should cut the beta=0 traffic by at least 4x
        assert msgs[3] < msgs[0] / 4

    def test_full_beta_is_linear(self):
        # beta >= log2(deg): each center probes exactly its pendant.
        n = 16
        inst, r = self.run_g(n, beta=10)
        assert r.messages <= 3 * n + 2

    def test_zero_beta_is_quadratic(self):
        n = 16
        _, r = self.run_g(n, beta=0)
        assert r.messages >= n * n

    def test_advice_grows_linearly_with_beta(self):
        inst = build_class_g(16)
        lengths = []
        for beta in (1, 3, 5):
            setup = inst.make_setup(seed=1)
            advice = PrefixAdvice(beta=beta).compute_advice(setup)
            lengths.append(len(advice[inst.centers[0]]))
        # beta bucket bits grow linearly; the self-delimiting beta field
        # adds a few more bits at small values.
        assert lengths == sorted(lengths)
        assert lengths[2] - lengths[0] >= 4
        assert lengths[2] - lengths[1] == 2

    def test_pendants_always_woken_deterministically(self):
        # The advised bucket always contains the true pendant port, so
        # every pendant wakes regardless of the port randomness.
        for seed in range(5):
            inst, r = self.run_g(12, beta=3, seed=seed)
            for w in inst.pendants:
                assert w in r.wake_time
