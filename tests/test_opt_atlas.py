"""The committed frontier atlas (repro.opt.atlas): entry identity,
monotone merge, structural checking, plain-engine replay, runtime
artifacts, the end-to-end improvement pass, and the CLI.

The replay property at the heart of the subsystem: *every* optimizer
incumbent — both genome kinds, any laziness — replays bit-identically
through the plain engine from its saved entry.
"""

import json

import pytest

from repro.errors import ReproError
from repro.experiments.parallel import ParallelSweepExecutor
from repro.opt.atlas import (
    ATLAS_KIND,
    ATLAS_REPLAY_KIND,
    artifact_is_stale,
    atlas_artifact_report,
    check_atlas,
    empty_atlas,
    entry_is_stale,
    entry_key,
    improve_atlas,
    load_atlas,
    make_entry,
    merge_entry,
    plain_replay_spec,
    purge_atlas_artifacts,
    replay_entry,
    save_artifact,
    save_atlas,
)
from repro.opt.evaluate import (
    CellEvaluator,
    check_world_spec,
    controlled_log_for,
)
from repro.opt.genomes import (
    ChoicePrefixGenome,
    ChoicePrefixSpace,
    DelayVectorGenome,
    DelayVectorSpace,
)


def serial_executor(tmp_path):
    return ParallelSweepExecutor(
        workers=0, cache_dir=tmp_path / "cache",
        topology_dir=tmp_path / "topo",
    )


def entry_for(tmp_path, genome, n=8, objective="time", seed=0):
    """Evaluate one genome and assemble its (replay-verified) entry."""
    base = check_world_spec("flooding", n, seed=seed)
    ev = CellEvaluator(serial_executor(tmp_path), base, objective)
    (score,) = ev.evaluate([genome])
    assert score is not None
    spec = ev.spec_for(genome)
    out = ev.executor.run([spec])[0]
    expect = {
        "messages": out.result.messages,
        "bits": out.result.bits,
        "time": out.result.time,
    }
    delays = None
    if genome.controlled:
        _, log = controlled_log_for(spec)
        delays = dict(log.delays)
    return make_entry(
        spec=spec,
        genome=genome,
        objective=objective,
        score=score,
        baseline=score - 1.0,
        baseline_trials=4,
        optimizer="test",
        expect=expect,
        delays=delays,
    )


# ----------------------------------------------------------------------
# The replay property
# ----------------------------------------------------------------------
class TestReplayProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delay_vector_incumbents_replay(self, tmp_path, seed):
        import random

        space = DelayVectorSpace(length=12)
        genome = space.sample(random.Random(seed))
        entry = entry_for(tmp_path, genome, seed=seed)
        ok, detail = replay_entry(entry)
        assert ok, detail

    @pytest.mark.parametrize("laziness", [0.0, 0.3, 1.0])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_choice_prefix_incumbents_replay(
        self, tmp_path, laziness, seed
    ):
        """Controlled incumbents replay through the *plain* heap from
        the recorded per-seq delay map, across the whole laziness
        range — not just the beam search's laziness-1.0 regime."""
        import random

        space = ChoicePrefixSpace(
            horizon=12, branch_cap=4, laziness=laziness
        )
        genome = space.sample(random.Random(seed))
        entry = entry_for(tmp_path, genome, seed=seed)
        assert entry["delays"]
        ok, detail = replay_entry(entry)
        assert ok, detail

    def test_lenient_controller_absorbs_absurd_choices(self, tmp_path):
        """Beyond-beam-regime leniency: out-of-range indices and a
        horizon far longer than the run are legal genomes, run to
        completion, and still replay."""
        genome = ChoicePrefixGenome(
            (999, 0, 7, 123) * 50, laziness=0.5
        )
        entry = entry_for(tmp_path, genome)
        ok, detail = replay_entry(entry)
        assert ok, detail

    def test_replay_detects_divergence(self, tmp_path):
        entry = entry_for(tmp_path, DelayVectorGenome((0.5, 0.9, 0.7)))
        entry["expect"]["messages"] += 1
        ok, detail = replay_entry(entry)
        assert not ok
        assert "messages" in detail


# ----------------------------------------------------------------------
# Entries, merging, checking
# ----------------------------------------------------------------------
class TestEntries:
    def test_entry_key_distinguishes_workloads(self):
        a = entry_key("flooding", {"kind": "check_world", "graph": "star"},
                      "time", 64)
        b = entry_key("flooding", {"kind": "check_world", "graph": "er"},
                      "time", 64)
        assert a != b
        assert a.startswith("flooding/check_world/time/n64/")

    def test_controlled_entry_requires_delays(self, tmp_path):
        base = check_world_spec("flooding", 8)
        genome = ChoicePrefixGenome((0, 1))
        from dataclasses import replace

        spec = replace(base, **genome.cell_overrides())
        with pytest.raises(ReproError):
            make_entry(
                spec=spec, genome=genome, objective="time", score=1.0,
                baseline=0.5, baseline_trials=4, optimizer="t",
                expect={"messages": 1, "bits": 1, "time": 1.0},
            )

    def test_merge_is_monotone(self, tmp_path):
        atlas = empty_atlas()
        entry = entry_for(tmp_path, DelayVectorGenome((0.9, 0.8)))
        assert merge_entry(atlas, entry) == "new"
        worse = dict(entry, score=entry["score"] - 0.5)
        assert merge_entry(atlas, worse) == "kept"
        key = entry_key(entry["algorithm"], entry["workload"],
                        entry["objective"], entry["n"])
        assert atlas["entries"][key]["score"] == entry["score"]
        better = dict(entry, score=entry["score"] + 0.5)
        assert merge_entry(atlas, better) == "improved"
        assert atlas["entries"][key]["score"] == better["score"]

    def test_save_load_round_trip(self, tmp_path):
        atlas = empty_atlas()
        merge_entry(
            atlas, entry_for(tmp_path, DelayVectorGenome((0.5, 0.6)))
        )
        path = save_atlas(atlas, tmp_path / "ATLAS.json")
        assert load_atlas(path) == atlas
        # A missing file is an empty atlas; a wrong file is an error.
        assert load_atlas(tmp_path / "absent.json") == empty_atlas()
        (tmp_path / "junk.json").write_text('{"kind": "other"}')
        with pytest.raises(ReproError):
            load_atlas(tmp_path / "junk.json")

    def test_check_atlas_passes_good_and_flags_bad(self, tmp_path):
        atlas = empty_atlas()
        entry = entry_for(tmp_path, DelayVectorGenome((0.7, 0.8)))
        merge_entry(atlas, entry)
        errors, stale = check_atlas(atlas)
        assert errors == []
        assert stale == []
        # Tampered genome: digest mismatch.
        key = next(iter(atlas["entries"]))
        bad = json.loads(json.dumps(atlas))  # deep copy
        bad["entries"][key]["genome"]["values"][0] = 0.123
        errors, _ = check_atlas(bad)
        assert any("digest" in e for e in errors)
        # Misplaced key: content mismatch.
        bad2 = json.loads(json.dumps(atlas))
        bad2["entries"]["wrong/key"] = bad2["entries"].pop(key)
        errors, _ = check_atlas(bad2)
        assert any("does not match" in e for e in errors)

    def test_stale_salts_reported_separately(self, tmp_path):
        atlas = empty_atlas()
        entry = entry_for(tmp_path, DelayVectorGenome((0.7, 0.9)))
        entry["salts"] = dict(entry["salts"], engine="0" * 16)
        merge_entry(atlas, entry)
        errors, stale = check_atlas(atlas)
        assert errors == []
        assert len(stale) == 1
        assert entry_is_stale(entry)

    def test_plain_replay_spec_strips_controller(self, tmp_path):
        entry = entry_for(
            tmp_path, ChoicePrefixGenome((0, 1, 2), laziness=1.0)
        )
        spec = plain_replay_spec(entry)
        assert spec.controller is None
        assert spec.delay["kind"] == "replay"
        assert spec.delay["delays"] == entry["delays"]


# ----------------------------------------------------------------------
# Runtime artifacts
# ----------------------------------------------------------------------
class TestArtifacts:
    def test_report_and_purge(self, tmp_path):
        entry = entry_for(tmp_path, DelayVectorGenome((0.6, 0.7)))
        adir = tmp_path / "atlas-artifacts"
        path = save_artifact(entry, adir)
        data = json.loads(path.read_text())
        assert data["kind"] == ATLAS_REPLAY_KIND
        assert not artifact_is_stale(data)
        report = atlas_artifact_report(adir)
        assert report == {"count": 1, "stale": 0}
        # A stale artifact is counted, purged by --stale, while live
        # ones survive.
        stale = dict(data, salts=dict(data["salts"], engine="0" * 16))
        (adir / "stale.json").write_text(json.dumps(stale))
        assert atlas_artifact_report(adir) == {"count": 2, "stale": 1}
        assert purge_atlas_artifacts(adir, stale_only=True) == 1
        assert atlas_artifact_report(adir) == {"count": 1, "stale": 0}
        assert purge_atlas_artifacts(adir) == 1
        assert atlas_artifact_report(adir) == {"count": 0, "stale": 0}


# ----------------------------------------------------------------------
# The end-to-end improvement pass
# ----------------------------------------------------------------------
class TestImproveAtlas:
    def test_full_pass_beats_baseline_and_replays(self, tmp_path):
        atlas = empty_atlas()
        summary = improve_atlas(
            atlas,
            base_spec=check_world_spec("flooding", 16, graph="star"),
            executor=serial_executor(tmp_path),
            optimizers=("cem", "sa"),
            generations=4,
            population=8,
            baseline_trials=8,
            replay_dir=tmp_path / "artifacts",
        )
        assert summary["merge"] == "new"
        assert summary["replay_ok"]
        assert summary["beat_baseline"]
        assert len(summary["runs"]) == 2
        errors, stale = check_atlas(atlas)
        assert errors == [] and stale == []
        # Idempotent re-run: monotone merge keeps the incumbent.
        again = improve_atlas(
            atlas,
            base_spec=check_world_spec("flooding", 16, graph="star"),
            executor=serial_executor(tmp_path),
            optimizers=("cem", "sa"),
            generations=4,
            population=8,
            baseline_trials=8,
            replay_dir=tmp_path / "artifacts",
        )
        assert again["merge"] in ("kept", "improved")

    def test_choice_prefix_space_pass(self, tmp_path):
        atlas = empty_atlas()
        summary = improve_atlas(
            atlas,
            base_spec=check_world_spec("flooding", 8, graph="star"),
            executor=serial_executor(tmp_path),
            optimizers=("pop",),
            generations=3,
            population=8,
            space=ChoicePrefixSpace(
                horizon=10, branch_cap=3, laziness=1.0
            ),
            baseline_trials=8,
            replay_dir=tmp_path / "artifacts",
        )
        assert summary["genome_kind"] == "choice_prefix"
        assert summary["replay_ok"]
        (entry,) = atlas["entries"].values()
        assert entry["delays"]
        errors, stale = check_atlas(atlas)
        assert errors == [] and stale == []

    def test_requires_executor(self):
        with pytest.raises(ReproError):
            improve_atlas(
                empty_atlas(),
                base_spec=check_world_spec("flooding", 8),
            )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestAtlasCli:
    def _run(self, argv):
        from repro.__main__ import main

        return main(argv)

    def test_run_show_check_cycle(self, tmp_path, capsys):
        atlas_path = tmp_path / "ATLAS.json"
        common = [
            "--atlas", str(atlas_path),
            "--atlas-dir", str(tmp_path / "artifacts"),
        ]
        rc = self._run(
            ["atlas", "run", "flooding", "--graph", "star",
             "--sizes", "12", "--generations", "3",
             "--population", "6", "--baseline-trials", "4",
             "--workers", "0",
             "--cache-dir", str(tmp_path / "cache"),
             "--topology-dir", str(tmp_path / "topo"),
             "--require-beat-baseline", *common]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "merge" in out and "new" in out
        assert atlas_path.exists()

        assert self._run(["atlas", "show", "--atlas",
                          str(atlas_path)]) == 0
        out = capsys.readouterr().out
        assert "flooding/check_world/time/n12" in out
        assert "live" in out

        assert self._run(
            ["atlas", "check", "--atlas", str(atlas_path),
             "--replay", "--strict"]
        ) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "replayed bit-identically" in out

    def test_check_flags_stale_under_strict(self, tmp_path, capsys):
        atlas = empty_atlas()
        entry = entry_for(tmp_path, DelayVectorGenome((0.8, 0.9)))
        entry["salts"] = dict(entry["salts"], engine="0" * 16)
        merge_entry(atlas, entry)
        path = save_atlas(atlas, tmp_path / "ATLAS.json")
        assert self._run(["atlas", "check", "--atlas", str(path)]) == 0
        capsys.readouterr()
        assert self._run(
            ["atlas", "check", "--atlas", str(path), "--strict"]
        ) == 1

    def test_check_rejects_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "ATLAS.json"
        bad.write_text(json.dumps({"kind": ATLAS_KIND, "version": 1,
                                   "entries": {"x": {}}}))
        assert self._run(["atlas", "check", "--atlas",
                          str(bad)]) == 1

    def test_cache_info_and_purge_cover_atlas(self, tmp_path, capsys):
        entry = entry_for(tmp_path, DelayVectorGenome((0.7, 0.6)))
        adir = tmp_path / "artifacts"
        save_artifact(entry, adir)
        assert self._run(
            ["cache", "info",
             "--cache-dir", str(tmp_path / "cache"),
             "--topology-dir", str(tmp_path / "topo"),
             "--replay-dir", str(tmp_path / "none"),
             "--atlas-dir", str(adir)]
        ) == 0
        out = capsys.readouterr().out
        assert "atlas" in out
        assert self._run(
            ["cache", "purge", "atlas",
             "--cache-dir", str(tmp_path / "cache"),
             "--topology-dir", str(tmp_path / "topo"),
             "--replay-dir", str(tmp_path / "none"),
             "--atlas-dir", str(adir)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 atlas replay artifact(s)" in out
        assert atlas_artifact_report(adir)["count"] == 0
