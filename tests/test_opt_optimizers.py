"""Ask/tell optimizer laws (repro.opt.optimizers).

Optimizers are tested against cheap synthetic objectives — no engine
runs here; executor-cell evaluation is covered by test_opt_evaluate.
"""

import pytest

from repro.errors import ReproError
from repro.opt.genomes import (
    ChoicePrefixSpace,
    DelayVectorSpace,
)
from repro.opt.optimizers import (
    OPTIMIZERS,
    make_optimizer,
)


def vector_objective(genome):
    """Maximized when every coordinate sits at the upper bound."""
    return sum(genome.values)


def prefix_objective(genome):
    """Maximized by the all-max choice sequence."""
    return float(sum(genome.choices))


def run_search(optimizer, objective, generations=12, population=12):
    for _ in range(generations):
        genomes = optimizer.ask(population)
        assert len(genomes) == population
        optimizer.tell([(g, objective(g)) for g in genomes])
    return optimizer


@pytest.mark.parametrize("name", sorted(OPTIMIZERS))
class TestEveryOptimizer:
    def test_improves_on_delay_vectors(self, name):
        space = DelayVectorSpace(length=8)
        opt = make_optimizer(name, space, seed=1)
        first = opt.ask(12)
        opt.tell([(g, vector_objective(g)) for g in first])
        random_best = opt.best_score
        run_search(opt, vector_objective)
        assert opt.best_score >= random_best
        # Meaningful progress toward the all-ones optimum (= 8.0).
        assert opt.best_score > 0.8 * 8.0

    def test_improves_on_choice_prefixes(self, name):
        space = ChoicePrefixSpace(horizon=10, branch_cap=4)
        opt = make_optimizer(name, space, seed=2)
        run_search(opt, prefix_objective)
        # Optimum is 30 (all threes); random mean is 15.
        assert opt.best_score > 20

    def test_deterministic_under_seed(self, name):
        def run():
            opt = make_optimizer(
                name, DelayVectorSpace(length=6), seed=42
            )
            run_search(opt, vector_objective, generations=5)
            return opt.best_score, opt.best_genome

        assert run() == run()

    def test_none_scores_treated_as_failures(self, name):
        space = DelayVectorSpace(length=4)
        opt = make_optimizer(name, space, seed=3)
        genomes = opt.ask(8)
        # Everything fails: no incumbent appears.
        opt.tell([(g, None) for g in genomes])
        assert opt.best_genome is None
        assert opt.best_score == float("-inf")
        # Recovery: later successful generations still search.
        genomes = opt.ask(8)
        opt.tell([(g, vector_objective(g)) for g in genomes])
        assert opt.best_genome is not None
        assert opt.best_score > 0

    def test_incumbent_never_regresses(self, name):
        space = DelayVectorSpace(length=6)
        opt = make_optimizer(name, space, seed=4)
        incumbents = []
        for _ in range(8):
            genomes = opt.ask(10)
            opt.tell([(g, vector_objective(g)) for g in genomes])
            incumbents.append(opt.best_score)
        assert incumbents == sorted(incumbents)

    def test_tie_break_is_ask_order(self, name):
        space = DelayVectorSpace(length=4)
        opt = make_optimizer(name, space, seed=5)
        genomes = opt.ask(6)
        opt.tell([(g, 1.0) for g in genomes])
        assert opt.best_genome == genomes[0]


def test_unknown_optimizer_rejected():
    with pytest.raises(ReproError):
        make_optimizer("gradient-descent", DelayVectorSpace())


def test_generation_counter_advances():
    opt = make_optimizer("cem", DelayVectorSpace(length=4), seed=0)
    for expected in (1, 2, 3):
        opt.tell([(g, 1.0) for g in opt.ask(4)])
        assert opt.generation == expected
