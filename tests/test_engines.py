"""Tests for the asynchronous and synchronous engines: the execution
semantics of Sec 1.1/3.2 (wake-on-message, FIFO channels, delay
normalization, local clocks, determinism)."""

import pytest

from repro.errors import ModelViolation, SimulationError, WakeUpFailure
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    DelayStrategy,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.async_engine import AsyncEngine
from repro.sim.node import NodeAlgorithm, NodeContext
from repro.sim.runner import run_wakeup
from repro.sim.sync_engine import SyncEngine
from repro.sim.trace import Trace
from repro.core.flooding import Flooding


class Recorder(NodeAlgorithm):
    """Records every callback with its context snapshot."""

    def __init__(self):
        self.events = []

    def on_wake(self, ctx):
        self.events.append(("wake", ctx.wake_cause))

    def on_message(self, ctx, port, payload):
        self.events.append(("msg", port, payload))


class ChattyOnWake(NodeAlgorithm):
    """Broadcasts a numbered burst on wake — used for FIFO tests."""

    def __init__(self, count=5):
        self.count = count

    def on_wake(self, ctx):
        for i in range(self.count):
            for p in ctx.ports:
                ctx.send(p, ("burst", i))


def _nodes(graph, factory):
    return {v: factory() for v in graph.vertices()}


class TestAsyncSemantics:
    def test_wake_on_message_calls_on_wake_first(self):
        g = path_graph(2)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        nodes = _nodes(g, ChattyOnWake)
        recorder = Recorder()
        nodes[1] = recorder
        eng = AsyncEngine(
            setup, nodes, Adversary(WakeSchedule.singleton(0), UnitDelay())
        )
        eng.run()
        assert recorder.events[0] == ("wake", "message")
        assert recorder.events[1][0] == "msg"

    def test_adversary_wake_cause(self):
        g = path_graph(2)
        setup = make_setup(g, seed=1)
        nodes = {0: Recorder(), 1: Recorder()}
        eng = AsyncEngine(
            setup, nodes,
            Adversary(WakeSchedule.all_at_once([0, 1]), UnitDelay()),
        )
        eng.run()
        assert nodes[0].events == [("wake", "adversary")]

    def test_waking_is_permanent_and_single(self):
        g = star_graph(4)
        setup = make_setup(g, seed=1)
        nodes = _nodes(g, ChattyOnWake)
        rec = Recorder()
        nodes[0] = rec  # center receives from all leaves
        eng = AsyncEngine(
            setup, nodes,
            Adversary(WakeSchedule.all_at_once([1, 2, 3]), UnitDelay()),
        )
        eng.run()
        wake_events = [e for e in rec.events if e[0] == "wake"]
        assert len(wake_events) == 1

    def test_fifo_per_channel(self):
        """Bursts must arrive in send order even under jittery delays."""

        class Jitter(DelayStrategy):
            def delay(self, src, dst, sent_at, seq):
                # deliberately non-monotone in seq
                return 1.0 - 0.9 * ((seq * 7919) % 10) / 10.0

        g = path_graph(2)
        setup = make_setup(g, seed=1)
        rec = Recorder()
        nodes = {0: ChattyOnWake(count=10), 1: rec}
        eng = AsyncEngine(
            setup, nodes, Adversary(WakeSchedule.singleton(0), Jitter())
        )
        eng.run()
        received = [e[2][1] for e in rec.events if e[0] == "msg"]
        assert received == sorted(received)

    def test_delay_out_of_range_rejected(self):
        class BadDelay(DelayStrategy):
            def delay(self, src, dst, sent_at, seq):
                return 2.0

        g = path_graph(2)
        setup = make_setup(g, seed=1)
        eng = AsyncEngine(
            setup,
            _nodes(g, ChattyOnWake),
            Adversary(WakeSchedule.singleton(0), BadDelay()),
        )
        with pytest.raises(SimulationError):
            eng.run()

    def test_event_budget(self):
        class PingPong(NodeAlgorithm):
            def on_wake(self, ctx):
                ctx.send(1, ("ping",))

            def on_message(self, ctx, port, payload):
                ctx.send(port, ("ping",))

        g = path_graph(2)
        setup = make_setup(g, seed=1)
        eng = AsyncEngine(
            setup,
            _nodes(g, PingPong),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
            max_events=100,
        )
        with pytest.raises(SimulationError):
            eng.run()

    def test_missing_node_instance(self):
        g = path_graph(3)
        setup = make_setup(g, seed=1)
        with pytest.raises(SimulationError):
            AsyncEngine(
                setup,
                {0: Recorder()},
                Adversary(WakeSchedule.singleton(0), UnitDelay()),
            )

    def test_unknown_scheduled_vertex(self):
        g = path_graph(2)
        setup = make_setup(g, seed=1)
        with pytest.raises(SimulationError):
            AsyncEngine(
                setup,
                _nodes(g, Recorder),
                Adversary(WakeSchedule.singleton(99), UnitDelay()),
            )

    def test_congest_violation_surfaces(self):
        class BigTalker(NodeAlgorithm):
            def on_wake(self, ctx):
                ctx.send(1, tuple(range(10_000)))

        g = path_graph(2)
        setup = make_setup(g, bandwidth="CONGEST", seed=1)
        eng = AsyncEngine(
            setup,
            _nodes(g, BigTalker),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
        )
        with pytest.raises(ModelViolation):
            eng.run()

    def test_kt0_blocks_neighbor_ids(self):
        class Cheater(NodeAlgorithm):
            def on_wake(self, ctx):
                ctx.neighbor_ids()

        g = path_graph(2)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        eng = AsyncEngine(
            setup,
            _nodes(g, Cheater),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
        )
        with pytest.raises(ModelViolation):
            eng.run()

    def test_deterministic_replay(self):
        g = cycle_graph(8)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=3)
        results = []
        for _ in range(2):
            trace = Trace()
            eng = AsyncEngine(
                setup,
                _nodes(g, ChattyOnWake),
                Adversary(
                    WakeSchedule.all_at_once([0, 4]),
                    UniformRandomDelay(seed=9),
                ),
                seed=5,
                trace=trace,
            )
            eng.run()
            results.append(
                [(e.time, e.kind, repr(e.vertex)) for e in trace.events]
            )
        assert results[0] == results[1]

    def test_time_normalization(self):
        """With unit delays, a path of length L wakes its far end at
        exactly time L."""
        g = path_graph(6)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        result = run_wakeup(setup, Flooding(), adversary, engine="async")
        assert result.wake_time[5] == pytest.approx(5.0)


class TestSyncSemantics:
    def test_message_delivered_next_round(self):
        g = path_graph(2)
        setup = make_setup(g, seed=1)
        rec = Recorder()
        nodes = {0: ChattyOnWake(count=1), 1: rec}
        eng = SyncEngine(
            setup, nodes, Adversary(WakeSchedule.singleton(0), UnitDelay())
        )
        metrics = eng.run()
        assert metrics.wake_time[1] == 1.0  # woken in round 1

    def test_fractional_wake_time_rounds_up(self):
        """A wake scheduled at t = 2.7 must land in round 3, never
        round 2 (regression: the schedule used to be floored with
        ``int(t)``, waking nodes before the adversary asked to)."""
        g = path_graph(2)
        setup = make_setup(g, seed=1)
        nodes = {0: ChattyOnWake(count=1), 1: Recorder()}
        eng = SyncEngine(
            setup,
            nodes,
            Adversary(
                WakeSchedule({0: 2.7}), UnitDelay()
            ),
        )
        metrics = eng.run()
        assert metrics.wake_time[0] == 3.0

    def test_integer_valued_float_wake_time_unchanged(self):
        """ceil is exact for integer-valued floats: t = 2.0 stays in
        round 2."""
        g = path_graph(2)
        setup = make_setup(g, seed=1)
        nodes = {0: ChattyOnWake(count=1), 1: Recorder()}
        eng = SyncEngine(
            setup,
            nodes,
            Adversary(WakeSchedule({0: 2.0}), UnitDelay()),
        )
        metrics = eng.run()
        assert metrics.wake_time[0] == 2.0

    def test_local_round_counts_from_own_wake(self):
        class RoundLogger(NodeAlgorithm):
            def __init__(self):
                self.rounds = []
                self._active = True

            def on_wake(self, ctx):
                pass

            def on_round(self, ctx):
                self.rounds.append(ctx.local_round)
                if len(self.rounds) >= 3:
                    self._active = False

            def wants_round(self):
                return self._active

        g = Graph([0, 1])
        g.add_edge(0, 1)
        setup = make_setup(g, seed=1)
        nodes = {0: RoundLogger(), 1: RoundLogger()}
        eng = SyncEngine(
            setup,
            nodes,
            Adversary(
                WakeSchedule.staggered([(0.0, [0]), (4.0, [1])]), UnitDelay()
            ),
        )
        eng.run()
        # Both observe local rounds 0,1,2 despite waking 4 rounds apart:
        # no global clock (footnote 4).
        assert nodes[0].rounds == [0, 1, 2]
        assert nodes[1].rounds == [0, 1, 2]

    def test_round_budget(self):
        class Forever(NodeAlgorithm):
            def wants_round(self):
                return True

        g = path_graph(2)
        setup = make_setup(g, seed=1)
        eng = SyncEngine(
            setup,
            _nodes(g, Forever),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
            max_rounds=50,
        )
        with pytest.raises(SimulationError):
            eng.run()

    def test_round_complexity_matches_flooding_depth(self):
        g = path_graph(5)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        result = run_wakeup(setup, Flooding(), adversary, engine="sync")
        assert result.time_all_awake == 4

    def test_deterministic_order(self):
        g = star_graph(6)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=2)
        traces = []
        for _ in range(2):
            r = run_wakeup(
                setup,
                Flooding(),
                Adversary(WakeSchedule.all_at_once([1, 2, 3]), UnitDelay()),
                engine="sync",
                record_trace=True,
            )
            traces.append(
                [(e.time, e.kind, repr(e.vertex)) for e in r.trace.events]
            )
        assert traces[0] == traces[1]


class TestRunner:
    def test_wakeup_failure_raised(self):
        class Mute(NodeAlgorithm):
            pass

        class MuteAlgo(Flooding):
            name = "mute"

            def make_node(self, vertex, setup):
                return Mute()

        g = path_graph(3)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        with pytest.raises(WakeUpFailure) as exc:
            run_wakeup(setup, MuteAlgo(), adversary, engine="async")
        assert len(exc.value.asleep) == 2

    def test_failure_tolerated_when_requested(self):
        class Mute(NodeAlgorithm):
            pass

        class MuteAlgo(Flooding):
            name = "mute"

            def make_node(self, vertex, setup):
                return Mute()

        g = path_graph(3)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(
            setup, MuteAlgo(), adversary, engine="async",
            require_all_awake=False,
        )
        assert not r.all_awake
        assert len(r.asleep) == 2

    def test_unknown_engine(self):
        g = path_graph(2)
        setup = make_setup(g, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        with pytest.raises(SimulationError):
            run_wakeup(setup, Flooding(), adversary, engine="quantum")

    def test_model_requirements_enforced(self):
        from repro.core.dfs_wakeup import DfsWakeUp

        g = path_graph(4)
        kt0 = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        with pytest.raises(SimulationError):
            run_wakeup(kt0, DfsWakeUp(), adversary, engine="async")

    def test_congest_declaration_enforced(self):
        from repro.core.dfs_wakeup import DfsWakeUp

        g = path_graph(4)
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="CONGEST", seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        with pytest.raises(SimulationError):
            run_wakeup(setup, DfsWakeUp(), adversary, engine="async")

    def test_sync_algorithm_rejected_on_async_engine(self):
        from repro.core.fast_wakeup import FastWakeUp

        g = path_graph(4)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        with pytest.raises(SimulationError):
            run_wakeup(setup, FastWakeUp(), adversary, engine="async")

    def test_result_summary_keys(self):
        g = path_graph(4)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, Flooding(), adversary, engine="async")
        s = r.summary()
        assert {"n", "messages", "bits", "time"} <= set(s)


class TestAwakeTime:
    def test_total_awake_time_flooding_path(self):
        """On a unit-delay path flooded from one end, node i is awake
        for (T - i) where T is the end of activity."""
        from repro.core.flooding import Flooding
        from repro.graphs.generators import path_graph
        from repro.models.knowledge import Knowledge, make_setup
        from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
        from repro.sim.runner import run_wakeup

        g = path_graph(5)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, Flooding(), adversary, engine="async")
        total = r.metrics.total_awake_time()
        end = r.metrics.last_activity
        expected = sum(end - i for i in range(5))
        assert total == pytest.approx(expected)

    def test_zero_when_nothing_happened(self):
        from repro.sim.metrics import Metrics

        assert Metrics().total_awake_time() == 0.0
