"""Scale sanity: the simulator and the message-optimal schemes handle
thousands of nodes comfortably (these guard against accidental
quadratic blowups in the engine or the oracles)."""

import time

import pytest

from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.flooding import Flooding
from repro.graphs.generators import connected_erdos_renyi, random_tree
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup

N = 2000


@pytest.mark.slow
class TestScale:
    def test_flooding_2000(self):
        g = connected_erdos_renyi(N, 6.0 / N, seed=1)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        start = time.perf_counter()
        r = run_wakeup(
            setup, Flooding(),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
            engine="async",
        )
        elapsed = time.perf_counter() - start
        assert r.all_awake
        assert r.messages == 2 * g.num_edges
        assert elapsed < 30

    def test_cen_2000(self):
        g = connected_erdos_renyi(N, 6.0 / N, seed=2)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        r = run_wakeup(
            setup, ChildEncodingAdvice(),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
            engine="async",
        )
        assert r.all_awake
        assert r.messages <= 3 * (N - 1)
        assert r.advice_max_bits <= 60

    def test_fip06_2000(self):
        g = random_tree(N, seed=3)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        r = run_wakeup(
            setup, Fip06TreeAdvice(),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
            engine="async",
        )
        assert r.all_awake
        assert r.messages <= 2 * (N - 1)

    def test_dfs_2000_single_origin(self):
        g = connected_erdos_renyi(N, 5.0 / N, seed=4)
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
        r = run_wakeup(
            setup, DfsWakeUp(),
            Adversary(WakeSchedule.singleton(0), UnitDelay()),
            engine="async",
        )
        assert r.all_awake
        assert r.messages <= 2 * (N - 1)
