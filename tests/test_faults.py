"""Fault-injection tests: how the Table-1 algorithms degrade when the
paper's error-free-channel assumption is violated."""

import pytest

from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.flooding import Flooding
from repro.errors import SimulationError
from repro.graphs.generators import complete_graph, connected_erdos_renyi, path_graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.faults import (
    BernoulliDrops,
    FaultyAdversary,
    NoDrops,
    TargetedDrops,
)
from repro.sim.runner import run_wakeup


def run_faulty(
    graph, algo, awake, drops, seed=0, knowledge=Knowledge.KT0,
    engine="async",
):
    setup = make_setup(graph, knowledge=knowledge, bandwidth="CONGEST", seed=seed)
    adversary = FaultyAdversary(
        schedule=WakeSchedule.all_at_once(awake),
        delays=UnitDelay(),
        drops=drops,
    )
    return run_wakeup(
        setup, algo, adversary, engine=engine, seed=seed + 1,
        require_all_awake=False,
    )


class TestDropStrategies:
    def test_no_drops_is_default(self):
        adversary = FaultyAdversary(schedule=WakeSchedule.singleton(0))
        assert isinstance(adversary.drops, NoDrops)
        assert not adversary.drops.drops(0, 1, 0)

    def test_bernoulli_rate(self):
        d = BernoulliDrops(0.3, seed=1)
        hits = sum(d.drops(0, 1, i) for i in range(4000))
        assert 0.25 < hits / 4000 < 0.35

    def test_bernoulli_deterministic(self):
        d1 = BernoulliDrops(0.5, seed=2)
        d2 = BernoulliDrops(0.5, seed=2)
        assert [d1.drops(0, 1, i) for i in range(50)] == [
            d2.drops(0, 1, i) for i in range(50)
        ]

    def test_bernoulli_invalid_p(self):
        with pytest.raises(SimulationError):
            BernoulliDrops(1.0)
        with pytest.raises(SimulationError):
            BernoulliDrops(-0.1)

    def test_targeted(self):
        d = TargetedDrops([(0, 1)])
        assert d.drops(0, 1, 7)
        assert not d.drops(1, 0, 7)


class TestRobustnessContrast:
    def test_flooding_survives_moderate_loss_on_dense_graphs(self):
        """Redundancy pays: on K_n, each node has n-1 wake chances."""
        g = complete_graph(30)
        r = run_faulty(
            g, Flooding(), [0], BernoulliDrops(0.3, seed=3), seed=1
        )
        assert r.all_awake

    def test_cen_is_single_path_fragile(self):
        """One lost probe strands a subtree: the price of message-
        optimality."""
        g = path_graph(12)
        # Drop the tree edge between 5 and 6 in both directions.
        r = run_faulty(
            g,
            ChildEncodingAdvice(),
            [0],
            TargetedDrops([(5, 6), (6, 5)]),
            seed=1,
        )
        assert not r.all_awake
        assert all(v in r.wake_time for v in range(6))
        assert all(v not in r.wake_time for v in range(6, 12))

    def test_flooding_survives_a_targeted_edge_on_redundant_graphs(self):
        g = connected_erdos_renyi(30, 0.3, seed=5)
        edges = list(g.edges())
        r = run_faulty(
            g, Flooding(), [0],
            TargetedDrops([edges[0], tuple(reversed(edges[0]))]),
            seed=2,
        )
        assert r.all_awake

    def test_lost_messages_still_counted_as_sent(self):
        """Message complexity charges the sender (the radio transmitted
        whether or not the packet arrived)."""
        g = path_graph(4)
        lossless = run_faulty(g, Flooding(), [0], NoDrops(), seed=3)
        # Drop everything out of node 1 towards 2: wave stops there.
        lossy = run_faulty(
            g, Flooding(), [0], TargetedDrops([(1, 2)]), seed=3
        )
        assert not lossy.all_awake
        # sends happened for the dropped edge too
        assert lossy.metrics.sent_by[1] == 2

    def test_high_loss_defeats_even_flooding_on_a_path(self):
        g = path_graph(25)
        r = run_faulty(
            g, Flooding(), [0], BernoulliDrops(0.6, seed=9), seed=4
        )
        # A path has zero redundancy: some prefix survives, the rest
        # stays asleep with overwhelming probability.
        assert not r.all_awake


class TestSyncEngineDrops:
    """The synchronous engine must honour drop strategies too
    (regression: it used to ignore ``adversary.drops`` entirely, so
    every fault-injection result silently differed between engines)."""

    def test_targeted_cut_stops_the_wave(self):
        g = path_graph(12)
        r = run_faulty(
            g, Flooding(), [0], TargetedDrops([(5, 6)]), seed=1,
            engine="sync",
        )
        assert not r.all_awake
        assert all(v in r.wake_time for v in range(6))
        assert all(v not in r.wake_time for v in range(6, 12))

    def test_dropped_messages_charged_to_sender(self):
        g = path_graph(4)
        r = run_faulty(
            g, Flooding(), [0], TargetedDrops([(1, 2)]), seed=3,
            engine="sync",
        )
        assert not r.all_awake
        # Node 1 transmitted on both its ports even though the 1->2
        # packet was lost: message complexity charges the sender.
        assert r.metrics.sent_by[1] == 2
        # ...but the loss is real: node 2 never received anything.
        assert r.metrics.received_by[2] == 0

    def test_bernoulli_loss_observable_on_sync_engine(self):
        g = path_graph(25)
        r = run_faulty(
            g, Flooding(), [0], BernoulliDrops(0.6, seed=9), seed=4,
            engine="sync",
        )
        assert not r.all_awake


class TestCrossEngineNoDropConformance:
    """Structural no-drop configurations must be indistinguishable from
    a plain :class:`~repro.sim.adversary.Adversary` — on both engines,
    to the last bit of every metric.  This pins the engines' fast-lane
    specialization (``NoDrops`` takes the drop-free path) to the
    general path's semantics."""

    @pytest.mark.parametrize("engine", ["async", "sync"])
    @pytest.mark.parametrize(
        "drops", [None, NoDrops(), BernoulliDrops(0.0, seed=5)]
    )
    def test_metrics_bit_identical(self, engine, drops):
        g = connected_erdos_renyi(24, 0.25, seed=7)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=7)
        schedule = WakeSchedule.all_at_once([0, 5])
        if drops is None:
            adversary = Adversary(schedule=schedule, delays=UnitDelay())
        else:
            adversary = FaultyAdversary(
                schedule=schedule, delays=UnitDelay(), drops=drops
            )
        r = run_wakeup(
            setup, Flooding(), adversary, engine=engine, seed=11
        )
        baseline = run_wakeup(
            setup,
            Flooding(),
            Adversary(schedule=schedule, delays=UnitDelay()),
            engine=engine,
            seed=11,
        )
        a, b = r.metrics, baseline.metrics
        assert a.messages_total == b.messages_total
        assert a.bits_total == b.bits_total
        assert a.max_message_bits == b.max_message_bits
        assert a.sent_by == b.sent_by
        assert a.received_by == b.received_by
        assert a.edge_messages == b.edge_messages
        assert a.wake_time == b.wake_time
        assert a.wake_cause == b.wake_cause
        assert a.first_wake == b.first_wake
        assert a.last_activity == b.last_activity
