"""Tests for the deterministic greedy spanner and its use in the
Theorem-6 scheme."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spanner_advice import LogSpannerAdvice, SpannerAdvice
from repro.errors import GraphError
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    cycle_graph,
    random_tree,
)
from repro.graphs.spanner import greedy_spanner, verify_spanner
from repro.graphs.traversal import girth, is_connected
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


class TestGreedySpanner:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_stretch(self, k):
        g = connected_erdos_renyi(35, 0.25, seed=k)
        s = greedy_spanner(g, k)
        assert verify_spanner(g, s, stretch=2 * k - 1)

    @pytest.mark.parametrize("k", [2, 3])
    def test_girth_exceeds_2k(self, k):
        """The greedy invariant: any kept edge closes no cycle of
        length <= 2k."""
        g = connected_erdos_renyi(30, 0.3, seed=9)
        s = greedy_spanner(g, k)
        assert girth(s) > 2 * k

    def test_size_bound_on_complete_graph(self):
        """girth > 2k implies <= n^{1+1/k} + n edges (Moore bound)."""
        n = 40
        g = complete_graph(n)
        for k in (2, 3):
            s = greedy_spanner(g, k)
            assert s.num_edges <= n ** (1 + 1 / k) + n

    def test_deterministic(self):
        g = connected_erdos_renyi(25, 0.3, seed=4)
        assert greedy_spanner(g, 2) == greedy_spanner(g, 2)

    def test_k1_keeps_everything(self):
        g = cycle_graph(8)
        assert greedy_spanner(g, 1) == g

    def test_tree_unchanged(self):
        g = random_tree(20, seed=2)
        assert greedy_spanner(g, 3) == g

    def test_preserves_connectivity(self):
        g = connected_erdos_renyi(30, 0.3, seed=8)
        assert is_connected(greedy_spanner(g, 3))

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            greedy_spanner(complete_graph(4), 0)

    @given(seed=st.integers(0, 300), k=st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_property_stretch_and_girth(self, seed, k):
        g = connected_erdos_renyi(18, 0.35, seed=seed)
        s = greedy_spanner(g, k)
        assert verify_spanner(g, s, stretch=2 * k - 1)
        assert girth(s) > 2 * k


class TestGreedySpannerAdvice:
    def test_wakes_everyone(self):
        g = connected_erdos_renyi(60, 0.15, seed=3)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(
            setup, SpannerAdvice(k=3, method="greedy"), adversary,
            engine="async", seed=2,
        )
        assert r.all_awake

    def test_fully_deterministic_scheme(self):
        """Theorem 6 is a *deterministic* advising scheme; the greedy
        backend delivers identical advice and executions every time."""
        g = connected_erdos_renyi(40, 0.2, seed=5)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        maps = [
            SpannerAdvice(k=3, method="greedy").compute_advice(setup)
            for _ in range(2)
        ]
        for v in g.vertices():
            assert maps[0][v] == maps[1][v]

    def test_log_variant_with_greedy(self):
        g = connected_erdos_renyi(50, 0.2, seed=7)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(
            setup, LogSpannerAdvice(method="greedy"), adversary,
            engine="async", seed=2,
        )
        assert r.all_awake
        assert r.advice_avg_bits <= 4 * math.log2(50) ** 2

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            SpannerAdvice(k=2, method="magic")

    def test_greedy_not_larger_than_bs_on_dense(self):
        """On dense inputs the greedy spanner is at least as sparse as
        Baswana–Sen for the same k (it is size-optimal for its girth)."""
        g = complete_graph(40)
        greedy = SpannerAdvice(k=3, method="greedy")
        bs = SpannerAdvice(k=3, method="baswana-sen", spanner_seed=1)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        greedy.compute_advice(setup)
        bs.compute_advice(setup)
        assert greedy.last_spanner.num_edges <= bs.last_spanner.num_edges
