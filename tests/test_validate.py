"""Tests for the post-hoc execution validator and the disconnected-graph
wake-up semantics it encodes."""

import pytest

from repro.analysis.validate import validate_result
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.flooding import Flooding
from repro.errors import WakeUpFailure
from repro.graphs.generators import (
    connected_erdos_renyi,
    cycle_graph,
    path_graph,
)
from repro.graphs.graph import Graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.runner import run_wakeup


def two_components():
    """Two disjoint 4-cycles: {0..3} and {10..13}."""
    g = Graph()
    for base in (0, 10):
        for i in range(4):
            g.add_edge(base + i, base + (i + 1) % 4)
    return g


class TestValidatorOnHonestRuns:
    def test_clean_flooding_run(self):
        g = connected_erdos_renyi(30, 0.15, seed=1)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        schedule = WakeSchedule.random_subset(g, 3, seed=2)
        r = run_wakeup(
            setup, Flooding(), Adversary(schedule, UnitDelay()),
            engine="async",
        )
        assert validate_result(r, setup, schedule.times(), min_delay=1.0) == []

    def test_clean_dfs_run_random_delays(self):
        g = connected_erdos_renyi(30, 0.15, seed=3)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        schedule = WakeSchedule.random_subset(g, 4, seed=5)
        r = run_wakeup(
            setup, DfsWakeUp(),
            Adversary(schedule, UniformRandomDelay(seed=7, lo=0.3)),
            engine="async",
        )
        # delays are at least 0.3 per hop
        assert validate_result(r, setup, schedule.times(), min_delay=0.3) == []

    def test_sync_run(self):
        g = cycle_graph(10)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        schedule = WakeSchedule.singleton(0)
        r = run_wakeup(
            setup, Flooding(), Adversary(schedule, UnitDelay()),
            engine="sync",
        )
        assert validate_result(r, setup, schedule.times(), min_delay=1.0) == []


class TestValidatorCatchesViolations:
    def _run(self):
        g = path_graph(6)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        schedule = WakeSchedule.singleton(0)
        r = run_wakeup(
            setup, Flooding(), Adversary(schedule, UnitDelay()),
            engine="async",
        )
        return g, setup, schedule, r

    def test_causal_violation_detected(self):
        g, setup, schedule, r = self._run()
        r.wake_time[5] = 0.5  # impossible: 5 hops away
        violations = validate_result(
            r, setup, schedule.times(), min_delay=1.0
        )
        assert any("causal bound" in v for v in violations)

    def test_message_count_mismatch_detected(self):
        g, setup, schedule, r = self._run()
        r.messages = r.messages + 5  # forge the headline count
        violations = validate_result(r, setup, schedule.times())
        assert any("per-node sends" in v for v in violations)

    def test_missing_nodes_detected(self):
        g, setup, schedule, r = self._run()
        del r.wake_time[5]
        violations = validate_result(r, setup, schedule.times())
        assert any("never woke" in v for v in violations)

    def test_ghost_wake_detected(self):
        g = two_components()
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        schedule = WakeSchedule.singleton(0)
        r = run_wakeup(
            setup, Flooding(), Adversary(schedule, UnitDelay()),
            engine="async", require_all_awake=False,
        )
        r.wake_time[10] = 3.0  # forged: other component
        violations = validate_result(
            r, setup, schedule.times(), expect_all=False
        )
        assert any("unreachable" in v for v in violations)

    def test_unknown_scheduled_vertex_reported(self):
        g, setup, schedule, r = self._run()
        violations = validate_result(r, setup, {99: 0.0}, expect_all=False)
        assert any("unknown vertex" in v for v in violations)


class TestDisconnectedSemantics:
    """Wake-up on a disconnected graph reaches exactly the components
    the adversary touches (footnote 6 of the paper allows disconnected
    lower-bound graphs for the same reason)."""

    def test_untouched_component_stays_asleep(self):
        g = two_components()
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        schedule = WakeSchedule.singleton(0)
        with pytest.raises(WakeUpFailure) as exc:
            run_wakeup(
                setup, Flooding(), Adversary(schedule, UnitDelay()),
                engine="async",
            )
        assert exc.value.asleep == frozenset({10, 11, 12, 13})

    def test_per_component_wakes_validate_clean(self):
        g = two_components()
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        schedule = WakeSchedule.singleton(0)
        r = run_wakeup(
            setup, Flooding(), Adversary(schedule, UnitDelay()),
            engine="async", require_all_awake=False,
        )
        assert set(r.wake_time) == {0, 1, 2, 3}
        assert validate_result(
            r, setup, schedule.times(), expect_all=True, min_delay=1.0
        ) == []  # "all" means all *reachable*

    def test_waking_both_components(self):
        g = two_components()
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        schedule = WakeSchedule.all_at_once([0, 10])
        r = run_wakeup(
            setup, Flooding(), Adversary(schedule, UnitDelay()),
            engine="async",
        )
        assert r.all_awake
