"""Tests for the Theorem-3 ranked-DFS wake-up algorithm."""

import math

import pytest

from repro.core.dfs_wakeup import DfsWakeUp, TOKEN
from repro.core.flooding import Flooding
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.runner import run_wakeup


def run_dfs(graph, schedule, seed=0, delays=None, engine="async", trace=False):
    setup = make_setup(graph, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=seed)
    adversary = Adversary(schedule, delays or UnitDelay())
    return run_wakeup(
        setup, DfsWakeUp(), adversary, engine=engine, seed=seed + 1,
        record_trace=trace,
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(15),
            lambda: cycle_graph(12),
            lambda: star_graph(10),
            lambda: complete_graph(12),
            lambda: random_tree(25, seed=3),
            lambda: connected_erdos_renyi(40, 0.1, seed=4),
        ],
    )
    def test_wakes_everyone_single_start(self, graph_factory):
        g = graph_factory()
        r = run_dfs(g, WakeSchedule.singleton(next(iter(g.vertices()))))
        assert r.all_awake

    @pytest.mark.parametrize("seed", range(5))
    def test_wakes_everyone_many_starts(self, seed):
        g = connected_erdos_renyi(35, 0.12, seed=seed)
        r = run_dfs(
            g, WakeSchedule.random_subset(g, 8, seed=seed), seed=seed
        )
        assert r.all_awake

    def test_wakes_everyone_under_random_delays(self):
        g = connected_erdos_renyi(30, 0.15, seed=7)
        r = run_dfs(
            g,
            WakeSchedule.random_subset(g, 5, seed=1),
            delays=UniformRandomDelay(seed=2),
        )
        assert r.all_awake

    def test_staggered_adversarial_wakeups(self):
        """The anti-rank pattern from the Thm-3 analysis still yields a
        complete wake-up (Las Vegas: correctness is certain)."""
        g = connected_erdos_renyi(60, 0.08, seed=9)
        sched = WakeSchedule.anti_rank_staggered(g, waves=5, gap=10.0, seed=3)
        r = run_dfs(g, sched, seed=2)
        assert r.all_awake

    def test_sync_engine_also_works(self):
        g = connected_erdos_renyi(25, 0.15, seed=11)
        r = run_dfs(g, WakeSchedule.random_subset(g, 4, seed=0), engine="sync")
        assert r.all_awake


class TestClaim1:
    """Claim 1: each token's path is a tree traversal — every edge at
    most twice per token, O(n) forwards per token."""

    def test_token_edge_usage(self):
        g = connected_erdos_renyi(30, 0.15, seed=5)
        r = run_dfs(g, WakeSchedule.singleton(0), trace=True)
        per_token_edges = {}
        for msg in r.trace.sends():
            if msg.payload[0] != TOKEN:
                continue
            key = (msg.payload[1], msg.payload[2])
            edge = frozenset((repr(msg.src), repr(msg.dst)))
            per_token_edges.setdefault(key, []).append(edge)
        assert per_token_edges  # at least the origin's token
        for key, edges in per_token_edges.items():
            from collections import Counter

            usage = Counter(edges)
            assert all(c <= 2 for c in usage.values())
            # forwards <= 2(n-1)
            assert len(edges) <= 2 * (g.num_vertices - 1)

    def test_single_token_message_count_linear(self):
        for n in (20, 40, 80):
            g = random_tree(n, seed=n)
            r = run_dfs(g, WakeSchedule.singleton(0))
            assert r.messages <= 2 * (n - 1)


class TestComplexity:
    def test_messages_beat_flooding_on_dense_graphs(self):
        g = complete_graph(40)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        schedule = WakeSchedule.random_subset(g, 10, seed=2)
        adversary = Adversary(schedule, UnitDelay())
        dfs = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=3)
        flood = run_wakeup(setup, Flooding(), adversary, engine="async", seed=3)
        assert dfs.messages < flood.messages / 3

    def test_nlogn_message_shape(self):
        """Across sizes, messages stay within a small multiple of
        n log n even with adversarially many wake-ups."""
        for n in (50, 100, 200):
            g = connected_erdos_renyi(n, 5.0 / n, seed=n)
            r = run_dfs(
                g, WakeSchedule.random_subset(g, n // 4, seed=1), seed=2
            )
            assert r.messages <= 10 * n * math.log(n)

    def test_message_woken_nodes_do_not_start_tokens(self):
        g = path_graph(12)
        r = run_dfs(g, WakeSchedule.singleton(0), trace=True)
        origins = {
            m.payload[2] for m in r.trace.sends() if m.payload[0] == TOKEN
        }
        assert len(origins) == 1  # only the adversary-woken node


class TestRankSemantics:
    def test_highest_rank_token_completes(self):
        """The surviving token visits every vertex (the correctness
        core of Theorem 3's proof)."""
        g = connected_erdos_renyi(25, 0.2, seed=13)
        r = run_dfs(g, WakeSchedule.random_subset(g, 6, seed=5), trace=True)
        # The token whose (rank, id) is lexicographically largest must
        # reach every vertex.
        best = None
        for m in r.trace.sends():
            if m.payload[0] != TOKEN:
                continue
            key = (m.payload[1], m.payload[2])
            if best is None or key > best:
                best = key
        visited = set()
        for m in r.trace.sends():
            if m.payload[0] == TOKEN and (m.payload[1], m.payload[2]) == best:
                visited.add(repr(m.src))
                visited.add(repr(m.dst))
        assert len(visited) == g.num_vertices

    def test_deterministic_given_seeds(self):
        g = connected_erdos_renyi(20, 0.2, seed=3)
        r1 = run_dfs(g, WakeSchedule.random_subset(g, 4, seed=7), seed=9)
        r2 = run_dfs(g, WakeSchedule.random_subset(g, 4, seed=7), seed=9)
        assert r1.messages == r2.messages
        assert r1.time == r2.time


class TestClaim4:
    """Claim 4: each node forwards O(log n) distinct tokens w.h.p —
    measured via the per-node tokens_forwarded sets the nodes keep."""

    def test_per_node_token_counts_logarithmic(self):
        import math

        from repro.core.dfs_wakeup import DfsWakeUpNode
        from repro.sim.async_engine import AsyncEngine
        from repro.sim.adversary import Adversary, UnitDelay

        n = 200
        g = connected_erdos_renyi(n, 5.0 / n, seed=17)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        nodes = {v: DfsWakeUpNode() for v in g.vertices()}
        # adversarially many origins: half the network
        schedule = WakeSchedule.random_subset(g, n // 2, seed=2)
        eng = AsyncEngine(setup, nodes, Adversary(schedule, UnitDelay()), seed=3)
        eng.run()
        worst = max(len(node.tokens_forwarded) for node in nodes.values())
        assert worst <= 6 * math.log(n)

    def test_token_counts_grow_sublinearly_in_origins(self):
        """Doubling the origin count must not double the worst-case
        per-node token load (least-element-list behaviour)."""
        from repro.core.dfs_wakeup import DfsWakeUpNode
        from repro.sim.async_engine import AsyncEngine
        from repro.sim.adversary import Adversary, UnitDelay

        n = 160
        g = connected_erdos_renyi(n, 5.0 / n, seed=23)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        worsts = []
        for count in (20, 80):
            nodes = {v: DfsWakeUpNode() for v in g.vertices()}
            schedule = WakeSchedule.random_subset(g, count, seed=5)
            AsyncEngine(
                setup, nodes, Adversary(schedule, UnitDelay()), seed=7
            ).run()
            worsts.append(max(len(nd.tokens_forwarded) for nd in nodes.values()))
        assert worsts[1] < 4 * worsts[0]
