"""CompiledTopology CSR invariants.

PR 4 tested artifact *fidelity* (store round-trips, digest checks);
this suite tests the CSR arrays themselves — the exact structures the
bulk engine consumes as its adjacency:

* ``indptr``/``indices`` round-trip against the dict adjacency,
  preserving the builder's insertion order exactly;
* symmetric-edge consistency (row i contains j iff row j contains i);
* awake-set and vertex-order stability across store save/load and
  payload round-trips.

These tests are dependency-light on purpose (plain Python lists); the
numpy/scipy view tests at the bottom carry the ``bulk`` marker and are
skipped without the extras.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.compile import (
    CompiledTopology,
    TopologyStore,
    clear_memory_cache,
    compiled_for_graph,
    compiled_topology,
)
from repro.graphs.generators import (
    connected_erdos_renyi,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.graph import Graph


def _zoo():
    return {
        "path10": path_graph(10),
        "cycle8": cycle_graph(8),
        "star12": star_graph(12),
        "grid4x4": grid_graph(4, 4),
        "tree20": random_tree(20, seed=7),
        "er40": connected_erdos_renyi(40, 0.12, seed=11),
    }


def _assert_csr_matches(topo: CompiledTopology, graph: Graph) -> None:
    verts = topo.verts
    index = {v: i for i, v in enumerate(verts)}
    assert verts == list(graph.vertices())  # insertion order preserved
    assert topo.indptr[0] == 0
    assert topo.indptr[-1] == len(topo.indices)
    assert len(topo.indptr) == len(verts) + 1
    # Monotone row pointers.
    assert all(
        a <= b for a, b in zip(topo.indptr, topo.indptr[1:])
    )
    for i, v in enumerate(verts):
        row = topo.indices[topo.indptr[i] : topo.indptr[i + 1]]
        # Exact neighbor order, not just the set.
        assert [verts[j] for j in row] == graph.neighbors(v)
    # Each undirected edge appears exactly twice.
    assert len(topo.indices) == 2 * sum(1 for _ in graph.edges())


def _assert_symmetric(topo: CompiledTopology) -> None:
    rows = [
        set(topo.indices[topo.indptr[i] : topo.indptr[i + 1]])
        for i in range(topo.n)
    ]
    for i, row in enumerate(rows):
        assert i not in row  # no self-loops
        for j in row:
            assert i in rows[j], f"edge ({i},{j}) has no reverse entry"


class TestCsrRoundTrip:
    @pytest.mark.parametrize("name", sorted(_zoo()))
    def test_against_dict_adjacency(self, name):
        graph = _zoo()[name]
        topo = CompiledTopology.compile(
            graph, [next(iter(graph.vertices()))]
        )
        _assert_csr_matches(topo, graph)
        _assert_symmetric(topo)

    @pytest.mark.parametrize("name", sorted(_zoo()))
    def test_materialized_graph_round_trips(self, name):
        """Compile -> payload -> materialize must reproduce adjacency
        and vertex order exactly (the bit-identical-rows contract)."""
        graph = _zoo()[name]
        topo = CompiledTopology.compile(
            graph, [next(iter(graph.vertices()))]
        )
        rebuilt = CompiledTopology.from_payload(topo.to_payload())
        g2 = rebuilt.graph()
        assert list(g2.vertices()) == list(graph.vertices())
        for v in graph.vertices():
            assert g2.neighbors(v) == graph.neighbors(v)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**16),
        extra=st.integers(min_value=0, max_value=60),
    )
    def test_property_random_graphs(self, n, seed, extra):
        rng = random.Random(seed)
        g = Graph(range(n))
        for v in range(1, n):
            g.add_edge(v, rng.randrange(v))
        for _ in range(extra):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b and not g.has_edge(a, b):
                g.add_edge(a, b)
        topo = CompiledTopology.compile(g, [0])
        _assert_csr_matches(topo, g)
        _assert_symmetric(topo)
        rebuilt = CompiledTopology.from_payload(topo.to_payload())
        assert rebuilt.verts == topo.verts
        assert rebuilt.indptr == topo.indptr
        assert rebuilt.indices == topo.indices
        assert rebuilt.awake == topo.awake


class TestStoreStability:
    def test_save_load_preserves_arrays_and_awake(self, tmp_path):
        clear_memory_cache()
        store = TopologyStore(tmp_path)
        spec = {"kind": "er_fraction_wake", "fraction": 0.2, "seed": 3}
        topo = compiled_topology(spec, 32, store=store)
        clear_memory_cache()  # force the disk path
        again = compiled_topology(spec, 32, store=store)
        assert store.stats["hit_disk"] == 1
        assert again.verts == topo.verts
        assert again.indptr == topo.indptr
        assert again.indices == topo.indices
        assert again.awake == topo.awake
        assert again.rho_awk == topo.rho_awk
        assert again.awake_vertices() == topo.awake_vertices()
        clear_memory_cache()

    def test_compiled_for_graph_lookup(self):
        clear_memory_cache()
        spec = {"kind": "er_single_wake", "seed": 5}
        topo = compiled_topology(spec, 24)
        graph = topo.graph()
        assert compiled_for_graph(graph) is topo
        # An unrelated graph (even an identical copy) never matches.
        other = cycle_graph(24)
        assert compiled_for_graph(other) is None
        clear_memory_cache()
        assert compiled_for_graph(graph) is None
        clear_memory_cache()


@pytest.mark.bulk
class TestBulkViews:
    def test_csr_views_match_topology(self):
        import numpy as np

        from repro.sim.bulk import _csr_views
        from repro.models.knowledge import Knowledge, make_setup

        clear_memory_cache()
        spec = {"kind": "er_single_wake", "seed": 9}
        topo = compiled_topology(spec, 40)
        setup = make_setup(
            topo.graph(), knowledge=Knowledge.KT1, seed=1, compiled=topo
        )
        verts, indptr, indices, A = _csr_views(setup)
        assert verts is topo.verts  # reused, not copied
        assert indptr.tolist() == list(topo.indptr)
        assert indices.tolist() == list(topo.indices)
        # Memoized on the artifact: same arrays next time.
        _, indptr2, _, A2 = _csr_views(setup)
        assert indptr2 is indptr and A2 is A
        assert "bulk_csr" in topo._runtime
        # The matrix is the symmetric 0/1 adjacency.
        assert (A != A.T).nnz == 0
        assert A.sum() == len(topo.indices)
        degrees = np.diff(indptr)
        g = topo.graph()
        assert degrees.tolist() == [g.degree(v) for v in verts]
        clear_memory_cache()

    def test_csr_views_plain_graph_fallback(self):
        from repro.sim.bulk import _csr_views
        from repro.models.knowledge import Knowledge, make_setup

        clear_memory_cache()
        g = grid_graph(5, 5)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        verts, indptr, indices, A = _csr_views(setup)
        assert verts == list(g.vertices())
        index = {v: i for i, v in enumerate(verts)}
        for i, v in enumerate(verts):
            row = indices[indptr[i] : indptr[i + 1]].tolist()
            assert row == [index[u] for u in g.neighbors(v)]
        assert (A != A.T).nnz == 0
