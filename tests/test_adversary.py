"""Tests for wake schedules and delay strategies."""

import pytest

from repro.errors import SimulationError
from repro.graphs.generators import path_graph
from repro.sim.adversary import (
    Adversary,
    PerEdgeDelay,
    SlowEdgeDelay,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)


class TestWakeSchedule:
    def test_all_at_once(self):
        s = WakeSchedule.all_at_once([1, 2, 3], time=2.0)
        assert s.times() == {1: 2.0, 2: 2.0, 3: 2.0}
        assert sorted(s.initially_awake()) == [1, 2, 3]
        assert s.first_wake_time == 2.0
        assert len(s) == 3

    def test_singleton(self):
        s = WakeSchedule.singleton(7)
        assert s.times() == {7: 0.0}

    def test_staggered(self):
        s = WakeSchedule.staggered([(0.0, [1]), (5.0, [2, 3])])
        assert s.times()[3] == 5.0
        assert s.initially_awake() == [1]

    def test_staggered_duplicate_rejected(self):
        with pytest.raises(SimulationError):
            WakeSchedule.staggered([(0.0, [1]), (1.0, [1])])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            WakeSchedule({})

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            WakeSchedule({1: -1.0})

    def test_random_subset(self):
        g = path_graph(20)
        s = WakeSchedule.random_subset(g, 5, seed=1)
        assert len(s) == 5
        assert all(v in g for v in s.all_scheduled())

    def test_random_subset_bad_count(self):
        g = path_graph(5)
        with pytest.raises(SimulationError):
            WakeSchedule.random_subset(g, 6)
        with pytest.raises(SimulationError):
            WakeSchedule.random_subset(g, 0)

    def test_anti_rank_geometric_waves(self):
        g = path_graph(40)
        s = WakeSchedule.anti_rank_staggered(g, waves=4, gap=3.0, seed=2)
        times = sorted(set(s.times().values()))
        assert times == [0.0, 3.0, 6.0, 9.0]
        from collections import Counter

        counts = Counter(s.times().values())
        assert counts[0.0] == 1 and counts[3.0] == 2 and counts[6.0] == 4

    def test_schedules_are_times_copies(self):
        s = WakeSchedule.singleton(1)
        t = s.times()
        t[99] = 0.0
        assert 99 not in s.times()


class TestDelays:
    def test_unit(self):
        assert UnitDelay().delay(0, 1, 5.0, 3) == 1.0

    def test_uniform_in_range(self):
        d = UniformRandomDelay(seed=1, lo=0.2)
        vals = [d.delay(0, 1, 0.0, i) for i in range(200)]
        assert all(0.2 <= v <= 1.0 for v in vals)
        assert len(set(vals)) > 100  # genuinely varied

    def test_uniform_pure_function(self):
        d = UniformRandomDelay(seed=1)
        assert d.delay(0, 1, 0.0, 5) == d.delay(0, 1, 99.0, 5)

    def test_uniform_prefix_cache_matches_stable_unit(self):
        """The hot path assembles the hash input from a cached
        per-edge prefix; it must stay byte-for-byte equivalent to the
        documented ``_stable_unit(seed, repr(src), repr(dst), seq)``
        construction (on-disk caches are keyed by these values)."""
        from repro.sim.adversary import _stable_unit

        d = UniformRandomDelay(seed=42, lo=0.05)
        for src, dst in [(0, 1), ("a", "b"), ((1, 2), (3, 4)), (-7, 7)]:
            for seq in (0, 1, 999, 12345678901234567890):
                u = _stable_unit(42, repr(src), repr(dst), seq)
                expected = 0.05 + (1.0 - 0.05) * u
                # Twice: first call populates the prefix cache, the
                # second exercises the cached path.
                assert d.delay(src, dst, 0.0, seq) == expected
                assert d.delay(src, dst, 3.5, seq) == expected

    def test_uniform_bad_lo(self):
        with pytest.raises(SimulationError):
            UniformRandomDelay(lo=0.0)
        with pytest.raises(SimulationError):
            UniformRandomDelay(lo=1.5)

    def test_per_edge_stable(self):
        d = PerEdgeDelay(seed=3)
        assert d.delay(0, 1, 0.0, 1) == d.delay(0, 1, 7.0, 99)
        assert 0.1 <= d.delay(2, 3, 0.0, 0) <= 1.0

    def test_slow_edge(self):
        d = SlowEdgeDelay([(0, 1)], fast=0.1)
        assert d.delay(0, 1, 0.0, 0) == 1.0
        assert d.delay(1, 0, 0.0, 0) == 0.1  # directed
        assert d.delay(5, 6, 0.0, 0) == 0.1

    def test_slow_edge_bad_fast(self):
        with pytest.raises(SimulationError):
            SlowEdgeDelay([], fast=0)

    def test_adversary_default_delay(self):
        a = Adversary(WakeSchedule.singleton(0))
        assert isinstance(a.delays, UnitDelay)


class TestSequentialSchedule:
    def test_times_and_order(self):
        s = WakeSchedule.sequential([5, 6, 7], gap=3.0)
        assert s.times() == {5: 0.0, 6: 3.0, 7: 6.0}
        assert s.initially_awake() == [5]

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            WakeSchedule.sequential([], gap=1.0)

    def test_negative_gap_rejected(self):
        with pytest.raises(SimulationError):
            WakeSchedule.sequential([1], gap=-1.0)

    def test_zero_gap_is_all_at_once(self):
        s = WakeSchedule.sequential([1, 2], gap=0.0)
        assert sorted(s.initially_awake()) == [1, 2]
