"""Applications layer — the cost of building on wake-up.

Sec 1.3 relates wake-up to leader election and spanning-tree problems;
the apps layer realizes those reductions.  This bench measures their
overhead over the bare Theorem-3 wake-up (announcements ride the
winner's DFS tree: O(n) extra messages) and the broadcast-at-wake-up
price of the Theorem-5B payload carrier.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import print_table
from repro.apps import FloodingBroadcast, LeaderElection, TreeBroadcast
from repro.core.dfs_wakeup import DfsWakeUp
from repro.graphs.generators import connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def test_leader_election_overhead():
    rows = []
    for n in (64, 128, 256):
        g = connected_erdos_renyi(n, 6.0 / n, seed=n)
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
        schedule = WakeSchedule.random_subset(g, max(2, n // 16), seed=2)
        adversary = Adversary(schedule, UnitDelay())
        bare = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=3)
        algo = LeaderElection()
        le = run_wakeup(setup, algo, adversary, engine="async", seed=3)
        rows.append(
            {
                "n": n,
                "wakeup_msgs": bare.messages,
                "election_msgs": le.messages,
                "overhead": le.messages - bare.messages,
                "leader": algo.agreed_leader() is not None,
                "tree": algo.spanning_tree() is not None,
            }
        )
        assert algo.agreed_leader() is not None
        assert algo.spanning_tree() is not None
        assert le.messages - bare.messages <= 3 * (n - 1)
    print_table(rows, title="Leader election: overhead over bare wake-up")


def test_broadcast_price_comparison():
    n = 256
    g = connected_erdos_renyi(n, 16.0 / n, seed=5)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    source = next(iter(g.vertices()))
    adversary = Adversary(WakeSchedule.singleton(source), UnitDelay())
    rows = []
    flood = FloodingBroadcast(payload=12345)
    rf = run_wakeup(setup, flood, adversary, engine="async", seed=2)
    rows.append(
        {
            "carrier": flood.name,
            "messages": rf.messages,
            "time": rf.time_all_awake,
            "complete": flood.everyone_holds_payload(setup),
        }
    )
    tree = TreeBroadcast(payload=12345)
    tree.mark_source(source)
    rt = run_wakeup(setup, tree, adversary, engine="async", seed=2)
    rows.append(
        {
            "carrier": tree.name,
            "messages": rt.messages,
            "time": rt.time_all_awake,
            "complete": tree.everyone_holds_payload(setup),
        }
    )
    print_table(rows, title="Broadcast at wake-up prices (n=256 dense ER)")
    assert flood.everyone_holds_payload(setup)
    assert tree.everyone_holds_payload(setup)
    assert rt.messages * 3 < rf.messages


def test_apps_representative_run(benchmark):
    g = connected_erdos_renyi(128, 6.0 / 128, seed=9)
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    adversary = Adversary(WakeSchedule.random_subset(g, 6, seed=3), UnitDelay())

    def run():
        algo = LeaderElection()
        run_wakeup(setup, algo, adversary, engine="async", seed=4)
        return algo

    algo = benchmark(run)
    assert algo.agreed_leader() is not None
