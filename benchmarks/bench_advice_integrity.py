"""Advice-integrity ablation: corrupt advice bits, measure failures.

The dual of Theorem 1's information argument: if advice bits carry
~1 bit of load-bearing information each, flipping them must break the
schemes — and it does, at rates that separate the schemes by their
redundancy.  (Outside the paper's model; a robustness study for the
"advice = provisioned configuration" deployment story.)
"""

from __future__ import annotations

import pytest

from repro.analysis.report import print_table
from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.sqrt_advice import SqrtThresholdAdvice
from repro.experiments.corruption import corruption_curve
from repro.graphs.generators import connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup


@pytest.fixture(scope="module")
def curves():
    g = connected_erdos_renyi(60, 0.12, seed=3)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    flip_counts = [0, 2, 8, 32]
    out = {}
    for factory in (Fip06TreeAdvice, SqrtThresholdAdvice, ChildEncodingAdvice):
        out[factory().name] = corruption_curve(
            setup, factory, [0], flip_counts=flip_counts, trials=12, seed=5
        )
    return out


def test_advice_integrity_table(curves):
    rows = []
    for name, points in curves.items():
        for p in points:
            rows.append(
                {
                    "scheme": name,
                    "flips": p.flips,
                    "ok": p.ok,
                    "asleep": p.asleep,
                    "error": p.error,
                    "failure_rate": p.failure_rate,
                }
            )
    print_table(rows, title="Advice integrity: failure rate vs flipped bits")


def test_zero_flips_never_fail(curves):
    for points in curves.values():
        assert points[0].failure_rate == 0.0


def test_failure_grows_with_corruption(curves):
    for name, points in curves.items():
        rates = [p.failure_rate for p in points]
        assert rates[-1] >= rates[1], name
        assert rates[-1] > 0.4, name


def test_advice_integrity_representative_run(benchmark):
    g = connected_erdos_renyi(40, 0.15, seed=7)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)

    def run():
        return corruption_curve(
            setup, ChildEncodingAdvice, [0], flip_counts=[4], trials=4, seed=2
        )

    points = benchmark(run)
    assert points[0].trials == 4
