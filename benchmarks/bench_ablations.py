"""Ablation benches for the design choices DESIGN.md calls out.

* spanner vs BFS-tree backbone for the Theorem-6 discovery protocol —
  isolates the contribution of bounded stretch to wake-up latency;
* CEN sibling-heap fan-out (pair vs single "next" pointer) — why the
  paper hands each child *two* next-sibling ports;
* flooding vs every advice scheme on one workload — the message-
  complexity ladder of Table 1 in a single table.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.report import print_table
from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.flooding import Flooding
from repro.core.spanner_advice import SpannerAdvice, TreeSpannerAdvice
from repro.core.sqrt_advice import SqrtThresholdAdvice
from repro.graphs.generators import connected_erdos_renyi, star_graph
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def test_ablation_spanner_vs_tree_backbone():
    """Same discovery protocol; spanner backbone trades messages for
    latency on low-diameter dense inputs with far-away wake sources."""
    n = 256
    g = connected_erdos_renyi(n, 20.0 / n, seed=41)
    awake = [next(iter(g.vertices()))]
    rho = awake_distance(g, awake)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    rows = []
    for algo in (SpannerAdvice(k=3, spanner_seed=3), TreeSpannerAdvice()):
        r = run_wakeup(setup, algo, adversary, engine="async", seed=2)
        rows.append(
            {
                "backbone": algo.name,
                "edges": algo.last_spanner.num_edges,
                "messages": r.messages,
                "time": r.time_all_awake,
                "rho": rho,
            }
        )
        assert r.all_awake
    print_table(rows, title="Ablation: spanner vs BFS-tree backbone")
    spanner_row, tree_row = rows
    # Tree uses fewest messages (n-1 edges), spanner bounded stretch.
    assert tree_row["messages"] <= spanner_row["messages"]


def test_ablation_message_ladder():
    """The Table-1 message-complexity ladder on one dense workload:
    tree advice < CEN < sqrt-threshold < flooding."""
    n = 200
    g = connected_erdos_renyi(n, 0.25, seed=43)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(
        WakeSchedule.singleton(next(iter(g.vertices()))), UnitDelay()
    )
    rows = []
    results = {}
    for algo_factory in (
        Fip06TreeAdvice,
        ChildEncodingAdvice,
        SqrtThresholdAdvice,
        Flooding,
    ):
        algo = algo_factory()
        r = run_wakeup(setup, algo, adversary, engine="async", seed=2)
        results[algo.name] = r
        rows.append(
            {
                "algorithm": algo.name,
                "messages": r.messages,
                "time": r.time_all_awake,
                "adv_max": r.advice_max_bits,
            }
        )
    print_table(rows, title="Ablation: message ladder on dense ER (n=200)")
    assert (
        results["fip06-tree-advice"].messages
        <= results["child-encoding"].messages
        <= results["sqrt-threshold-advice"].messages + 1
        <= results["flooding"].messages
    )


def test_ablation_cen_pair_fanout():
    """The sibling heap's branching factor 2 gives log2(t) discovery
    depth; a single next pointer would be Theta(t).  We measure CEN's
    star latency against both predictions."""
    n = 513  # 512 leaves
    g = star_graph(n)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
    r = run_wakeup(setup, ChildEncodingAdvice(), adversary, engine="async", seed=2)
    t = n - 1
    linear_prediction = t  # single-pointer chain
    log_prediction = 2 * math.log2(t)
    print(
        f"\nstar({t} leaves): CEN wake latency {r.time_all_awake} "
        f"(log prediction ~{log_prediction:.0f}, chain would be ~{linear_prediction})"
    )
    assert r.time_all_awake <= 3 * log_prediction
    assert r.time_all_awake < linear_prediction / 4


def test_ablation_representative_run(benchmark):
    n = 128
    g = connected_erdos_renyi(n, 16.0 / n, seed=47)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(
        WakeSchedule.singleton(next(iter(g.vertices()))), UnitDelay()
    )

    def run():
        return run_wakeup(
            setup, TreeSpannerAdvice(), adversary, engine="async", seed=3
        )

    result = benchmark(run)
    assert result.all_awake


def test_ablation_random_ranks_vs_id_only():
    """Why Theorem 3 needs random ranks: an adversary waking nodes one
    at a time in increasing-ID order displaces an ID-keyed traversal on
    every wave, while random ranks make each displacement succeed only
    with probability ~1/i (the paper's Claim-3 argument)."""
    from repro.core.dfs_wakeup import DfsWakeUp
    from repro.sim.adversary import WakeSchedule

    n = 150
    g = connected_erdos_renyi(n, 5.0 / n, seed=3)
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    by_id = sorted(g.vertices(), key=setup.id_of)
    rows = []
    ratios = []
    for waves in (5, 10, 20, 40):
        sched = WakeSchedule.sequential(by_id[:waves], gap=20.0)
        means = {}
        for label, exp in (("ranks", 4), ("id-only", 0)):
            msgs = []
            for seed in range(5):
                r = run_wakeup(
                    setup,
                    DfsWakeUp(rank_exponent=exp),
                    Adversary(sched, UnitDelay()),
                    engine="async",
                    seed=seed,
                )
                assert r.all_awake
                msgs.append(r.messages)
            means[label] = sum(msgs) / len(msgs)
        rows.append(
            {
                "waves": waves,
                "ranks_msgs": means["ranks"],
                "id_only_msgs": means["id-only"],
                "ratio": means["id-only"] / means["ranks"],
            }
        )
        ratios.append(means["id-only"] / means["ranks"])
    print_table(
        rows,
        title="Ablation: random ranks vs ID-only under sequential wake-ups",
    )
    # the adversary's advantage over the rank-free variant grows with
    # the number of waves and is decisive by 20+
    assert ratios[-1] > 1.5
    assert ratios[-1] >= ratios[0]
