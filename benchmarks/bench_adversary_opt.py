"""Adversary-optimizer throughput benchmark: candidate evaluations/sec
through the ask/tell loop.

The ``repro.opt`` cost unit is one *candidate evaluation* — a genome
materialized into a :class:`~repro.experiments.parallel.CellSpec` and
executed through the sweep executor (cache off here, so every
evaluation is a real engine run).  This bench pins that throughput for
each optimizer on the check-world star workload, the same shape the CI
atlas-smoke job searches.

Results land in ``BENCH_opt.json`` (repo root); the committed copy is
the ledger baseline that ``repro perf check --candidate opt=...``
guards against >30% regressions.  Run as a script:

    PYTHONPATH=src python benchmarks/bench_adversary_opt.py
    PYTHONPATH=src python benchmarks/bench_adversary_opt.py --check

``--check`` runs a reduced matrix (fast enough for CI) and validates
the output schema without touching the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments.parallel import ParallelSweepExecutor
from repro.opt.evaluate import CellEvaluator, check_world_spec, optimize
from repro.opt.genomes import DelayVectorSpace
from repro.opt.optimizers import make_optimizer

# Envelope v2: the unified BENCH_*.json schema (schema, created,
# python, profile, cases); the profile names which PROFILES entry
# in repro.analysis.perf guards it.
SCHEMA = 2
PROFILE = "opt"

#: (optimizer, algorithm, n) — the benchmark matrix.
CASES = (
    ("cem", "flooding", 64),
    ("sa", "flooding", 64),
    ("pop", "flooding", 64),
    ("cem", "echo-flooding", 64),
)

#: Every per-case record carries exactly these fields; the perf gate
#: (repro.analysis.perf PROFILES["opt"]) refuses files without them.
CASE_FIELDS = (
    "optimizer",
    "algorithm",
    "n",
    "evaluations",
    "wall_s",
    "evals_per_sec",
)


def run_case(
    optimizer: str,
    algorithm: str,
    n: int,
    *,
    generations: int = 4,
    population: int = 8,
    repeats: int = 3,
) -> dict:
    base_spec = check_world_spec(algorithm, n, graph="star", seed=0)
    space = DelayVectorSpace(length=min(64, n))
    executor = ParallelSweepExecutor(
        workers=0, use_cache=False, use_topology_store=False
    )
    best_wall = float("inf")
    evaluations = 0
    for _ in range(repeats):
        opt = make_optimizer(optimizer, space, seed=7)
        evaluator = CellEvaluator(executor, base_spec, "time")
        t0 = time.perf_counter()
        outcome = optimize(
            opt, evaluator,
            generations=generations, population=population,
        )
        wall = time.perf_counter() - t0
        assert outcome.best_genome is not None, "bench search found nothing"
        evaluations = outcome.evaluations
        best_wall = min(best_wall, wall)
    return {
        "optimizer": optimizer,
        "algorithm": algorithm,
        "n": n,
        "evaluations": evaluations,
        "wall_s": best_wall,
        "evals_per_sec": (
            evaluations / best_wall if best_wall > 0 else 0.0
        ),
    }


def run_bench(
    cases=CASES,
    generations: int = 4,
    population: int = 8,
    repeats: int = 3,
    quiet: bool = False,
) -> dict:
    recs = []
    for optimizer, algorithm, n in cases:
        rec = run_case(
            optimizer, algorithm, n,
            generations=generations, population=population,
            repeats=repeats,
        )
        recs.append(rec)
        if not quiet:
            print(
                f"{optimizer:4s} {algorithm:14s} n={n:4d}  "
                f"{rec['evaluations']:4d} evals  "
                f"{rec['wall_s']*1e3:8.1f} ms  "
                f"{rec['evals_per_sec']:8.1f} evals/s"
            )
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "profile": PROFILE,
        "repeats": repeats,
        "cases": recs,
    }


def validate(payload: dict) -> list:
    """Schema problems in a bench payload (empty list = valid)."""
    problems = []
    for key in ("schema", "created", "python", "profile", "cases"):
        if key not in payload:
            problems.append(f"missing top-level field {key!r}")
    for i, case in enumerate(payload.get("cases", [])):
        for f in CASE_FIELDS:
            if f not in case:
                problems.append(f"case #{i} missing field {f!r}")
    if not payload.get("cases"):
        problems.append("no cases recorded")
    return problems


# ----------------------------------------------------------------------
# pytest hook: a tiny smoke run so `pytest benchmarks/` covers the bench
# ----------------------------------------------------------------------
def test_adversary_opt_bench_smoke():
    payload = run_bench(
        cases=(("cem", "flooding", 16), ("sa", "flooding", 16)),
        generations=2,
        population=4,
        repeats=1,
        quiet=True,
    )
    assert validate(payload) == []
    for case in payload["cases"]:
        assert case["evaluations"] > 0
        assert case["evals_per_sec"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_opt.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per case; best-of wins (default: 3)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: reduced matrix, single repeat, schema "
        "validation, no baseline overwrite (writes to --out only if "
        "given explicitly)",
    )
    args = parser.parse_args(argv)

    if args.check:
        payload = run_bench(
            cases=(("cem", "flooding", 16), ("sa", "flooding", 16)),
            generations=2,
            population=4,
            repeats=1,
        )
        problems = validate(payload)
        if problems:
            for p in problems:
                print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
            return 1
        if args.out != parser.get_default("out"):
            Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {args.out}")
        print("bench check ok")
        return 0

    payload = run_bench(repeats=args.repeats)
    problems = validate(payload)
    if problems:
        for p in problems:
            print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
        return 1
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
