"""Footnote 3 / Sec 1.3 — the gossip boundary, measured.

Push-only gossip solves broadcast on regular expanders [SS11] but
footnote 3's lollipop (complete graph + pendant) defeats it: despite
constant vertex expansion, the pendant waits Omega(n) expected rounds.
Push-*pull* gossip fixes it — but pulling requires being awake, which
is exactly why gossip does not transfer to the wake-up problem.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import fit_power_law
from repro.analysis.report import print_table
from repro.analysis.stats import median, summarize
from repro.core.gossip import PushGossipWakeUp, PushPullBroadcast
from repro.graphs.generators import lollipop_graph, random_regular
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def _push_pendant_wait(n: int, trials: int) -> float:
    g = lollipop_graph(n, 1)
    waits = []
    for seed in range(trials):
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="CONGEST", seed=seed)
        adversary = Adversary(WakeSchedule.singleton(3), UnitDelay())
        r = run_wakeup(
            setup, PushGossipWakeUp(), adversary, engine="sync",
            seed=seed, require_all_awake=False, max_rounds=10**6,
        )
        if n in r.wake_time:  # the pendant's vertex label is n
            waits.append(r.wake_time[n])
    return median(waits)


def test_footnote3_pendant_wait_scales_linearly():
    """Median pendant wake round grows ~linearly in n (push-only)."""
    ns = [16, 32, 64]
    waits = [_push_pendant_wait(n, trials=9) for n in ns]
    rows = [
        {"n": n, "median_pendant_round": w, "log2n": math.log2(n)}
        for n, w in zip(ns, waits)
    ]
    print_table(rows, title="Footnote 3: push-only gossip on the lollipop")
    fit = fit_power_law(ns, [max(1.0, w) for w in waits])
    print(f"pendant wait ~ n^{fit.exponent:.2f}")
    # Linear-ish in n (heavy-tailed sample medians: accept >= 0.5) and
    # far above the logarithmic growth seen on expanders.
    assert fit.exponent >= 0.5
    assert waits[-1] > 4 * math.log2(ns[-1])


def test_footnote3_push_works_on_regular_expanders():
    """[SS11] contrast: on random 6-regular graphs, push-only wakes
    everyone in O(log n) rounds."""
    rows = []
    for n in (64, 128, 256):
        g = random_regular(n, 6, seed=n)
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="CONGEST", seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(
            setup, PushGossipWakeUp(), adversary, engine="sync", seed=2,
            max_rounds=10**6,
        )
        rows.append(
            {"n": n, "rounds": r.time_all_awake, "8log2n": 8 * math.log2(n)}
        )
        assert r.all_awake
        assert r.time_all_awake <= 8 * math.log2(n)
    print_table(rows, title="[SS11]: push-only on 6-regular expanders")


def test_footnote3_pull_rescues_broadcast():
    """With the all-awake assumption (broadcast, not wake-up), push-pull
    completes in O(log n) even on the lollipop."""
    rows = []
    for n in (32, 64):
        g = lollipop_graph(n, 1)
        rounds = []
        for seed in range(5):
            setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="CONGEST", seed=seed)
            algo = PushPullBroadcast(source_id=setup.id_of(3))
            adversary = Adversary(
                WakeSchedule.all_at_once(list(g.vertices())), UnitDelay()
            )
            run_wakeup(setup, algo, adversary, engine="sync", seed=seed)
            assert algo.all_informed()
            rounds.append(algo.completion_round())
        rows.append(
            {
                "n": n,
                "median_rounds": median(rounds),
                "6log2n": 6 * math.log2(n),
            }
        )
        assert median(rounds) <= 6 * math.log2(n)
    print_table(rows, title="Push-pull broadcast on the lollipop (all awake)")


def test_footnote3_representative_run(benchmark):
    def run():
        return _push_pendant_wait(24, trials=3)

    wait = benchmark(run)
    assert wait >= 1
