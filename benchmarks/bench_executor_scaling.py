"""Executor backend scaling benchmark: fork pool vs work stealing.

PR-9 put the executor's process-pool plumbing behind the
``ExecutionBackend`` protocol (``repro/experiments/backends.py``) and
added a work-stealing backend with size-aware (largest-cells-first)
scheduling.  This bench pins down the scheduling difference the
refactor exists for, using *sleep-paced* cells — each cell's cost is a
calibrated ``time.sleep`` spin, so the measurement is
scheduling-bound, overlaps perfectly across worker processes, and is
meaningful even on a single-core CI box:

* ``uniform`` — equal-cost cells.  Scheduling order cannot matter;
  the stealing backend must tie the fork pool (speedup ~1.0x).  This
  is the no-regression guard.
* ``skewed``  — a tail of small cells plus one large-``n`` straggler
  *last* in submission order.  The fork pool assigns batches in
  submission order, so the straggler starts after a full wave of
  small batches and serializes the tail; the stealing backend sorts
  batches largest-first (LPT) and overlaps the straggler with the
  small cells.  Acceptance: >= 1.2x with >= 2 workers.

``steal_speedup = fork_s / steal_s`` is the guarded metric per
``(mix, workers)`` case.

The payload also records a ``batching`` section — the same cell list
run with ``chunk_size=1`` (one future per cell, the pre-PR-9 failure
mode for small sweeps) vs the default plan (``plan_batches`` with its
MIN_CHUNK floor) — quantifying the per-future IPC overhead the
batching floor removes.  It is informational, not ledger-gated.

Results land in ``BENCH_executor.json`` (repo root); the committed
copy is the baseline the unified perf ledger (``repro perf check
--candidate executor=...``) guards against regressions.  Run as a
script:

    PYTHONPATH=src python benchmarks/bench_executor_scaling.py
    PYTHONPATH=src python benchmarks/bench_executor_scaling.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.flooding import Flooding
from repro.experiments.parallel import CellSpec, ParallelSweepExecutor

# Envelope v2: the unified BENCH_*.json schema (schema, created,
# python, profile, cases); the profile names which PROFILES entry
# in repro.analysis.perf guards it.
SCHEMA = 2
PROFILE = "executor"

#: Every per-case record carries exactly these fields; the perf ledger
#: (repro.analysis.perf.PROFILES["executor"]) refuses files without
#: them.
CASE_FIELDS = (
    "mix",
    "workers",
    "cells",
    "fork_s",
    "steal_s",
    "steal_speedup",
)

#: Sleep budget of one small cell / the skewed mix's straggler.
SMALL_SLEEP_S = 0.08
LARGE_SLEEP_S = 1.0
#: Cells per batch, pinned so the submission shape (and therefore the
#: fork pool's tail serialization) is deterministic across machines.
CHUNK = 4

DEFAULT_WORKERS = 2


class PacedFlooding(Flooding):
    """Flooding with a calibrated wall-clock cost.

    Spins in small sleeps (a single blocking sleep would also work
    here, but small increments keep the per-cell watchdog responsive)
    before delegating to the real algorithm on a tiny graph, so a
    cell's cost is its ``pace`` parameter, not its compute.  The
    actual wake-up run keeps the rows real — the cross-backend
    bit-identical assertion below compares genuine sweep records.
    """

    name = "bench-paced-flooding"

    def __init__(self, pace: float = SMALL_SLEEP_S):
        super().__init__()
        self.pace = float(pace)

    def build_nodes(self, setup):
        deadline = time.monotonic() + self.pace
        while time.monotonic() < deadline:
            time.sleep(0.005)
        return super().build_nodes(setup)


#: Dotted path the worker processes resolve the paced algorithm by
#: (fork inherits this module in sys.modules, so the import resolves
#: whether the bench runs as a script or under pytest).
PACED = f"{__name__}:PacedFlooding"


def _cell(n: int, trial: int, pace: float) -> CellSpec:
    return CellSpec(
        algorithm=PACED,
        n=n,
        trial=trial,
        seed=7,
        engine="async",
        knowledge="KT0",
        bandwidth="CONGEST",
        workload={"kind": "er_single_wake", "avg_degree": 3.0, "seed": 7},
        algo_params={"pace": pace},
    )


def _mix_cells(mix: str, scale: float):
    if mix == "uniform":
        return [
            _cell(48, t, SMALL_SLEEP_S * scale) for t in range(16)
        ]
    if mix == "skewed":
        # The large-n straggler goes LAST: worst case for
        # submission-order assignment, the case LPT fixes.
        cells = [
            _cell(48, t, SMALL_SLEEP_S * scale) for t in range(12)
        ]
        cells.append(_cell(512, 0, LARGE_SLEEP_S * scale))
        return cells
    raise ValueError(f"unknown mix {mix!r}")


def _run(cells, backend: str, workers: int, chunk=CHUNK):
    executor = ParallelSweepExecutor(
        workers=workers,
        backend=backend,
        use_cache=False,
        chunk_size=chunk,
    )
    t0 = time.perf_counter()
    outcomes = executor.run(list(cells))
    wall = time.perf_counter() - t0
    bad = [o for o in outcomes if not o.ok]
    assert not bad, [o.error for o in bad]
    return wall, [o.record() for o in outcomes]


def run_case(mix: str, workers: int, scale: float) -> dict:
    cells = _mix_cells(mix, scale)
    fork_s, fork_rows = _run(cells, "fork", workers)
    steal_s, steal_rows = _run(cells, "steal", workers)
    # Backends may only move wall clock, never results.
    assert steal_rows == fork_rows, "backend changed sweep rows"
    return {
        "mix": mix,
        "workers": workers,
        "cells": len(cells),
        "fork_s": fork_s,
        "steal_s": steal_s,
        "steal_speedup": fork_s / steal_s if steal_s > 0 else 0.0,
    }


def measure_batching(workers: int, cells: int = 96) -> dict:
    """Per-future vs batched submission overhead on trivial cells
    (the small-sweep IPC fix the MIN_CHUNK floor provides).  Enough
    cells that the per-future round trips dominate the trivial cell
    cost."""
    specs = [_cell(32, t, 0.0) for t in range(cells)]
    per_cell_s, _ = _run(specs, "fork", workers, chunk=1)
    batched_s, _ = _run(specs, "fork", workers, chunk=None)
    return {
        "cells": cells,
        "workers": workers,
        "per_cell_s": per_cell_s,
        "batched_s": batched_s,
        "speedup": per_cell_s / batched_s if batched_s > 0 else 0.0,
    }


def run_bench(
    workers: int = DEFAULT_WORKERS,
    scale: float = 1.0,
    quiet: bool = False,
) -> dict:
    cases = []
    for mix in ("uniform", "skewed"):
        rec = run_case(mix, workers, scale)
        cases.append(rec)
        if not quiet:
            print(
                f"{mix:8s} workers={workers} cells={rec['cells']:3d}  "
                f"fork {rec['fork_s']:6.2f}s  "
                f"steal {rec['steal_s']:6.2f}s  "
                f"({rec['steal_speedup']:5.2f}x)"
            )
    batching = measure_batching(workers)
    if not quiet:
        print(
            f"batching workers={workers} cells={batching['cells']:3d}  "
            f"chunk=1 {batching['per_cell_s']:6.2f}s  "
            f"batched {batching['batched_s']:6.2f}s  "
            f"({batching['speedup']:5.2f}x)"
        )
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "profile": PROFILE,
        "cases": cases,
        "batching": batching,
    }


def validate(payload: dict) -> list:
    """Schema problems in a bench payload (empty list = valid)."""
    problems = []
    for key in ("schema", "created", "python", "profile", "cases"):
        if key not in payload:
            problems.append(f"missing top-level field {key!r}")
    for i, case in enumerate(payload.get("cases", [])):
        for f in CASE_FIELDS:
            if f not in case:
                problems.append(f"case #{i} missing field {f!r}")
    if not payload.get("cases"):
        problems.append("no cases recorded")
    return problems


# ----------------------------------------------------------------------
# pytest hook: a tiny smoke run so `pytest benchmarks/` covers the bench
# ----------------------------------------------------------------------
def test_executor_bench_smoke():
    payload = run_bench(workers=2, scale=0.25, quiet=True)
    assert validate(payload) == []
    for case in payload["cases"]:
        assert case["fork_s"] > 0
        assert case["steal_s"] > 0
        assert case["steal_speedup"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_executor.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help="worker processes per backend run (default: %(default)s)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="multiplier on every cell's sleep budget "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: reduced sleeps, schema validation, no baseline "
        "overwrite (writes to --out only if given explicitly)",
    )
    args = parser.parse_args(argv)

    if args.check:
        payload = run_bench(workers=args.workers, scale=0.25)
        problems = validate(payload)
        if problems:
            for p in problems:
                print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
            return 1
        if args.out != parser.get_default("out"):
            Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {args.out}")
        print("bench check ok")
        return 0

    payload = run_bench(workers=args.workers, scale=args.scale)
    problems = validate(payload)
    if problems:
        for p in problems:
            print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
        return 1
    skewed = next(
        c for c in payload["cases"] if c["mix"] == "skewed"
    )
    if args.workers >= 2 and skewed["steal_speedup"] < 1.2:
        print(
            "ACCEPTANCE FAIL: skewed-mix steal speedup "
            f"{skewed['steal_speedup']:.2f}x < 1.2x",
            file=sys.stderr,
        )
        return 1
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
