"""Table 1, row "Theorem 6" — spanner-based advice, async KT0 CONGEST.

Paper claims (parameter k): O(k rho_awk log n) time,
O(k n^{1+1/k} log n) messages, O(n^{1/k} log^2 n) advice.  The bench
sweeps k to trace the three-way trade-off on a fixed dense workload.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.report import print_table
from repro.core.spanner_advice import SpannerAdvice
from repro.graphs.generators import connected_erdos_renyi
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@pytest.fixture(scope="module")
def k_sweep():
    n = 256
    g = connected_erdos_renyi(n, 24.0 / n, seed=23)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    awake = [next(iter(g.vertices()))]
    rho = awake_distance(g, awake)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    rows = []
    for k in (1, 2, 3, 4, 6):
        algo = SpannerAdvice(k=k, spanner_seed=2)
        r = run_wakeup(setup, algo, adversary, engine="async", seed=3)
        rows.append(
            {
                "k": k,
                "n": n,
                "rho": rho,
                "spanner_edges": algo.last_spanner.num_edges,
                "messages": r.messages,
                "time": r.time_all_awake,
                "adv_avg": r.advice_avg_bits,
                "adv_max": r.advice_max_bits,
            }
        )
        assert r.all_awake
    return rows


def test_theorem6_tradeoff_table(k_sweep):
    print_table(
        k_sweep,
        title="Theorem 6: spanner advice trade-off in k (n=256, dense ER)",
    )
    # Messages track spanner size: each spanner edge carries O(1).
    for row in k_sweep:
        assert row["messages"] <= 4 * row["spanner_edges"]


def test_theorem6_messages_shrink_with_k(k_sweep):
    """Growing k sparsifies the spanner: messages fall monotonically
    (up to randomized-spanner noise), while time rises with stretch."""
    msgs = [row["messages"] for row in k_sweep]
    assert msgs[-1] < msgs[0] / 2
    times = [row["time"] for row in k_sweep]
    assert times[-1] >= times[0]


def test_theorem6_advice_shrinks_with_k(k_sweep):
    adv = [row["adv_avg"] for row in k_sweep]
    assert adv[-1] < adv[0]


def test_theorem6_message_exponent_vs_n():
    """Fix k = 3, sweep n on dense inputs: messages should grow like
    the spanner size n^{1+1/3}, far below the m ~ n^2 of flooding."""
    from repro.analysis.fitting import best_exponent_model

    ns = [64, 128, 256]
    ys = []
    for n in ns:
        g = connected_erdos_renyi(n, 0.3, seed=n)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        adversary = Adversary(
            WakeSchedule.all_at_once(list(g.vertices())), UnitDelay()
        )
        r = run_wakeup(
            setup, SpannerAdvice(k=3, spanner_seed=4), adversary,
            engine="async", seed=2,
        )
        ys.append(r.messages)
    best, errs = best_exponent_model(ns, ys, [1.0, 4 / 3, 2.0])
    print(f"\nk=3 message exponent: best={best:.3f}, errors={errs}")
    assert best != 2.0  # decisively below the flooding exponent


def test_theorem6_representative_run(benchmark):
    g = connected_erdos_renyi(256, 24.0 / 256, seed=23)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(
        WakeSchedule.singleton(next(iter(g.vertices()))), UnitDelay()
    )

    def run():
        return run_wakeup(
            setup, SpannerAdvice(k=3, spanner_seed=2), adversary,
            engine="async", seed=3,
        )

    result = benchmark(run)
    assert result.all_awake
