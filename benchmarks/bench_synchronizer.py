"""Table 1 footnote — Theorem 4's "async" listing via the alpha
synchronizer.

The paper presents FastWakeUp synchronously (Sec 3.2) but lists it
under "async. KT1 LOCAL" in Table 1.  The classical bridge is a
synchronizer; this bench measures the price: the wrapped algorithm
remains correct on the asynchronous engine under adversarial delays,
while the frame overhead multiplies messages by Theta(m/n * rounds) —
which is why the synchronous statement is the interesting one.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import print_table
from repro.core.fast_wakeup import FastWakeUp
from repro.graphs.generators import connected_erdos_renyi, grid_graph
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    PerEdgeDelay,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.runner import run_wakeup
from repro.sim.synchronizer import AlphaSynchronized


def test_synchronizer_bridges_theorem4_to_async():
    rows = []
    for label, delays in (
        ("unit", UnitDelay()),
        ("uniform-random", UniformRandomDelay(seed=3)),
        ("per-edge-fixed", PerEdgeDelay(seed=4)),
    ):
        g = grid_graph(7, 7)
        rho = awake_distance(g, [0])
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
        wrapped = AlphaSynchronized(FastWakeUp(), pulse_budget=10 * rho + 25)
        r = run_wakeup(
            setup, wrapped, Adversary(WakeSchedule.singleton(0), delays),
            engine="async", seed=2,
        )
        rows.append(
            {
                "delays": label,
                "inner_awake": wrapped.inner_all_awake(),
                "messages": r.messages,
                "time": round(r.time, 1),
            }
        )
        assert r.all_awake
        assert wrapped.inner_all_awake()
    print_table(
        rows,
        title="Theorem 4 on the async engine via the alpha synchronizer",
    )


def test_synchronizer_overhead_vs_native_sync():
    """Quantify the frame tax against the native synchronous run."""
    g = connected_erdos_renyi(100, 8.0 / 100, seed=7)
    rho = awake_distance(g, [0])
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
    native = run_wakeup(setup, FastWakeUp(), adversary, engine="sync", seed=2)
    wrapped = AlphaSynchronized(FastWakeUp(), pulse_budget=10 * rho + 25)
    bridged = run_wakeup(setup, wrapped, adversary, engine="async", seed=2)
    overhead = bridged.messages / max(1, native.messages)
    print(
        f"\nnative sync: {native.messages} msgs | alpha-sync bridge: "
        f"{bridged.messages} msgs ({overhead:.1f}x frame overhead)"
    )
    assert wrapped.inner_all_awake()
    assert bridged.messages > native.messages  # the bridge is not free


def test_synchronizer_representative_run(benchmark):
    g = grid_graph(6, 6)
    rho = awake_distance(g, [0])
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    adversary = Adversary(
        WakeSchedule.singleton(0), UniformRandomDelay(seed=5)
    )

    def run():
        wrapped = AlphaSynchronized(FastWakeUp(), pulse_budget=10 * rho + 25)
        return run_wakeup(setup, wrapped, adversary, engine="async", seed=2)

    result = benchmark(run)
    assert result.all_awake
