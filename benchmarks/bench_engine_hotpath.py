"""Engine hot-path microbenchmark: events/sec through the inner loops.

PR-2's phase profiling showed the implicit ``engine`` phase dominating
sweep cell time, almost all of it per-send Python overhead (port
lookups, payload measurement, branchy flush loops).  This bench pins
that number down so the perf trajectory is visible across PRs: it
measures end-to-end **events per second** for two representative
workloads —

* ``flooding`` — Theta(m) constant-size messages, the pure engine
  overhead stress (both engines);
* ``dfs-rank`` — Theorem 3's ranked DFS tokens with growing payloads,
  the bit-size-measurement stress (async only).

at n in {512, 2048} on a connected ER graph of average degree 8.

"Events" is the engine's own work unit: processed heap events (wakes +
deliveries) for the async engine, and deliveries + wakes for the sync
engine (whose ``events_processed`` counts rounds, not per-message
work).

Results land in ``BENCH_engine.json`` (repo root) — the committed copy
is the baseline that ``scripts/check_bench_baseline.py`` guards against
>30% regressions.  Run as a script:

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py
    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py --check

``--check`` runs tiny sizes (fast enough for CI) and validates the
output schema without touching the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.registry import get_algorithm
from repro.graphs.generators import connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UniformRandomDelay, WakeSchedule
from repro.sim.runner import run_wakeup

# Envelope v2: the unified BENCH_*.json schema — every bench carries
# the same top level (schema, created, python, profile, cases); the
# profile names which PROFILES entry in repro.analysis.perf guards it.
SCHEMA = 2
PROFILE = "engine"

#: (algorithm, engine, knowledge) cases; sizes come from the CLI.
CASES = (
    ("flooding", "async", Knowledge.KT0),
    ("flooding", "sync", Knowledge.KT0),
    ("dfs-rank", "async", Knowledge.KT1),
)

DEFAULT_SIZES = (512, 2048)
AVG_DEGREE = 8.0

#: Every per-case record carries exactly these fields; the baseline
#: checker (scripts/check_bench_baseline.py) refuses files without them.
CASE_FIELDS = (
    "algorithm",
    "engine",
    "n",
    "events",
    "messages",
    "wall_s",
    "events_per_sec",
)


def _build_world(n: int, knowledge: Knowledge, seed: int = 7):
    graph = connected_erdos_renyi(n, AVG_DEGREE / max(1, n - 1), seed=seed + n)
    setup = make_setup(graph, knowledge=knowledge, seed=seed + n)
    # A handful of adversary-woken nodes (not just one) so dfs-rank
    # exercises rank competition between concurrent tokens.
    verts = sorted(graph.vertices(), key=setup.id_of)
    awake = verts[:: max(1, n // 4)][:4]
    adversary = Adversary(
        WakeSchedule.all_at_once(awake), UniformRandomDelay(seed=seed)
    )
    return setup, adversary


def run_case(algorithm: str, engine: str, knowledge: Knowledge, n: int,
             repeats: int = 3) -> dict:
    setup, adversary = _build_world(n, knowledge)
    best_wall = float("inf")
    result = None
    for _ in range(repeats):
        algo = get_algorithm(algorithm)
        t0 = time.perf_counter()
        result = run_wakeup(setup, algo, adversary, engine=engine, seed=11)
        wall = time.perf_counter() - t0
        best_wall = min(best_wall, wall)
    m = result.metrics
    if engine == "async":
        events = m.events_processed
    else:
        events = m.messages_total + m.awake_count()
    return {
        "algorithm": algorithm,
        "engine": engine,
        "n": n,
        "events": events,
        "messages": m.messages_total,
        "wall_s": best_wall,
        "events_per_sec": events / best_wall if best_wall > 0 else 0.0,
    }


def run_bench(sizes=DEFAULT_SIZES, repeats: int = 3, quiet: bool = False) -> dict:
    cases = []
    for algorithm, engine, knowledge in CASES:
        for n in sizes:
            rec = run_case(algorithm, engine, knowledge, n, repeats=repeats)
            cases.append(rec)
            if not quiet:
                print(
                    f"{algorithm:12s} {engine:5s} n={n:5d}  "
                    f"{rec['events']:8d} events  {rec['wall_s']*1e3:8.1f} ms  "
                    f"{rec['events_per_sec']:12.0f} events/s"
                )
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "profile": PROFILE,
        "repeats": repeats,
        "avg_degree": AVG_DEGREE,
        "cases": cases,
    }


def validate(payload: dict) -> list:
    """Schema problems in a bench payload (empty list = valid)."""
    problems = []
    for key in ("schema", "created", "python", "profile", "cases"):
        if key not in payload:
            problems.append(f"missing top-level field {key!r}")
    for i, case in enumerate(payload.get("cases", [])):
        for f in CASE_FIELDS:
            if f not in case:
                problems.append(f"case #{i} missing field {f!r}")
    if not payload.get("cases"):
        problems.append("no cases recorded")
    return problems


# ----------------------------------------------------------------------
# pytest hook: a tiny smoke run so `pytest benchmarks/` covers the bench
# ----------------------------------------------------------------------
def test_hotpath_bench_smoke():
    payload = run_bench(sizes=(48,), repeats=1, quiet=True)
    assert validate(payload) == []
    for case in payload["cases"]:
        assert case["events"] > 0
        assert case["events_per_sec"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_engine.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="network sizes to measure (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per case; best-of wins (default: 3)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: tiny sizes, single repeat, schema validation, "
        "no baseline overwrite (writes to --out only if given "
        "explicitly)",
    )
    args = parser.parse_args(argv)

    if args.check:
        payload = run_bench(sizes=(64,), repeats=1)
        problems = validate(payload)
        if problems:
            for p in problems:
                print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
            return 1
        if args.out != parser.get_default("out"):
            Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {args.out}")
        print("bench check ok")
        return 0

    payload = run_bench(sizes=tuple(args.sizes), repeats=args.repeats)
    problems = validate(payload)
    if problems:
        for p in problems:
            print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
        return 1
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
