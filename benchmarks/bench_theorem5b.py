"""Table 1, row "Theorem 5(B)" — the child-encoding scheme, async KT0
CONGEST.

Paper claims: O(D log n) time, O(n) messages, max advice O(log n).
This is the paper's sweet spot: optimal messages and near-optimal time
with logarithmic advice.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import fit_power_law
from repro.analysis.report import print_table
from repro.core.child_encoding import ChildEncodingAdvice
from repro.experiments.sweeps import er_single_wake, sweep
from repro.graphs.generators import star_graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@pytest.fixture(scope="module")
def t5b_sweep(bench_sizes):
    return sweep(
        ChildEncodingAdvice,
        er_single_wake(avg_degree=6.0, seed=19),
        sizes=bench_sizes,
        knowledge=Knowledge.KT0,
        bandwidth="CONGEST",
        trials=3,
        seed=6,
    )


def test_theorem5b_linear_messages(t5b_sweep):
    rows = [
        {
            **r.as_dict(),
            "msgs_per_n": r.messages / r.n,
            "log2n": math.log2(r.n),
        }
        for r in t5b_sweep
    ]
    print_table(rows, title="Theorem 5B: child-encoding scheme (CEN)")
    fit = fit_power_law(
        [r.n for r in t5b_sweep], [r.messages for r in t5b_sweep]
    )
    print(f"messages ~ n^{fit.exponent:.3f} (r^2={fit.r_squared:.3f})")
    assert 0.9 <= fit.exponent <= 1.1
    for r in t5b_sweep:
        assert r.messages <= 3 * (r.n - 1)


def test_theorem5b_logarithmic_advice(t5b_sweep):
    """Max advice stays O(log n) across the sweep — compare slopes."""
    for r in t5b_sweep:
        assert r.advice_max_bits <= 8 * math.log2(r.n) + 16
    # Advice grows sub-polynomially: quadrupling n adds only O(1) bits.
    first, last = t5b_sweep[0], t5b_sweep[-1]
    assert last.advice_max_bits - first.advice_max_bits <= 24


def test_theorem5b_time_pays_log_factor():
    """On a star, CEN discovery costs Theta(log n) rounds where Cor 1
    answers in O(1) — the scheme's time/advice trade."""
    from repro.core.fip06 import Fip06TreeAdvice

    rows = []
    for n in (65, 257, 1025):  # 2^k + 1 leaves
        g = star_graph(n)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        cen = run_wakeup(
            setup, ChildEncodingAdvice(), adversary, engine="async", seed=2
        )
        fip = run_wakeup(
            setup, Fip06TreeAdvice(), adversary, engine="async", seed=2
        )
        rows.append(
            {
                "n": n,
                "cen_time": cen.time_all_awake,
                "fip06_time": fip.time_all_awake,
                "cen_adv_max": cen.advice_max_bits,
                "fip06_adv_max": fip.advice_max_bits,
            }
        )
        assert cen.time_all_awake <= 4 * math.log2(n)
        assert fip.time_all_awake <= 2
        assert cen.advice_max_bits < fip.advice_max_bits
    print_table(
        rows,
        title="Theorem 5B vs Corollary 1 on stars: log-time for log-advice",
    )


def test_theorem5b_representative_run(benchmark):
    factory = er_single_wake(avg_degree=6.0, seed=19)
    graph, awake = factory(256)
    setup = make_setup(graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())

    def run():
        return run_wakeup(
            setup, ChildEncodingAdvice(), adversary, engine="async", seed=5
        )

    result = benchmark(run)
    assert result.all_awake
