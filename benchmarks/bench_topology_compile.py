"""Compiled-topology cache benchmark: build once vs rebuild per trial.

PR-3 made the engine inner loop fast enough that *cell setup* became a
dominant sweep cost: every trial rebuilt the workload graph and re-ran
the ``awake_distance`` traversal.  The compiled-topology layer
(``repro/graphs/compile.py``) replaces that with one build per
(workload, n) plus cheap cache fetches.  This bench pins the three
costs down per workload:

* ``legacy_s``   — T trials x (build workload + awake_distance), the
  pre-cache behavior of ``_execute_cell``;
* ``cold_s``     — one cold ``TopologyStore.fetch_or_build`` (build +
  artifact write) into an empty store;
* ``warm_s``     — T trials fetching through the store with a cold
  in-process LRU: one disk hit, then T-1 memory hits.

``warm_speedup = legacy_s / warm_s`` is the headline metric — the
per-cell setup speedup a multi-trial sweep cell sees with a warm
artifact store.  The acceptance bar is >= 5x on the D(k, q) case.

Workloads:

* ``dkq`` — the D(2, q) Lazebnik–Ustimenko family (GF(p^m) arithmetic
  plus q^(k+1) incidence solves), the paper's expensive lower-bound
  topology;
* ``er_spanner`` — connected ER plus the greedy 3-spanner the
  spanner-advice oracle needs: the legacy path rebuilds the spanner
  per trial, the compiled path memoizes it per topology via
  ``cached_spanner`` (persisted into the artifact's extras).

Results land in ``BENCH_topology.json`` (repo root) — the committed
copy is the baseline ``scripts/check_bench_baseline.py --profile
topology`` guards against >30% ``warm_speedup`` regressions.  Run as a
script:

    PYTHONPATH=src python benchmarks/bench_topology_compile.py
    PYTHONPATH=src python benchmarks/bench_topology_compile.py --check
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.sweeps import build_workload
from repro.graphs.compile import (
    TopologyStore,
    cached_spanner,
    clear_memory_cache,
    compiled_topology,
)
from repro.graphs.spanner import greedy_spanner
from repro.graphs.traversal import awake_distance

# Envelope v2: the unified BENCH_*.json schema (schema, created,
# python, profile, cases); the profile names which PROFILES entry
# in repro.analysis.perf guards it.
SCHEMA = 2
PROFILE = "topology"

SPANNER_K = 3

#: (case name, workload spec) pairs; sizes come from the CLI.
CASES = (
    ("dkq", {"kind": "dkq_point_wake", "k": 2}),
    ("er_spanner", {"kind": "er_single_wake", "avg_degree": 8.0}),
)

DEFAULT_SIZES = (512,)
DEFAULT_TRIALS = 6

#: Every per-case record carries exactly these fields; the baseline
#: checker (scripts/check_bench_baseline.py --profile topology) refuses
#: files without them.
CASE_FIELDS = (
    "workload",
    "n",
    "trials",
    "legacy_s",
    "cold_s",
    "warm_s",
    "warm_speedup",
)


def _with_spanner(name: str) -> bool:
    return name == "er_spanner"


def _legacy_trial(spec: dict, n: int, with_spanner: bool) -> None:
    """One trial of the pre-cache setup path: rebuild everything."""
    graph, awake = build_workload(dict(spec))(n)
    awake_distance(graph, awake)
    if with_spanner:
        greedy_spanner(graph, SPANNER_K)


def _warm_trial(
    spec: dict, n: int, store: TopologyStore, with_spanner: bool
) -> None:
    """One trial of the compiled path: fetch, plus the memoized spanner."""
    topo = compiled_topology(dict(spec), n, store=store)
    if with_spanner:
        cached_spanner(
            topo.graph(),
            "greedy",
            {"k": SPANNER_K},
            lambda g: greedy_spanner(g, SPANNER_K),
        )


def run_case(
    name: str, spec: dict, n: int, trials: int, store_root: Path
) -> dict:
    with_spanner = _with_spanner(name)
    store_dir = store_root / f"{name}-{n}"

    # Legacy: rebuild per trial (what _execute_cell did before the
    # compiled-topology layer).
    t0 = time.perf_counter()
    for _ in range(trials):
        _legacy_trial(spec, n, with_spanner)
    legacy_s = time.perf_counter() - t0

    # Cold: one fetch-or-build into an empty store (build + write).
    clear_memory_cache()
    store = TopologyStore(store_dir)
    t0 = time.perf_counter()
    _warm_trial(spec, n, store, with_spanner)
    cold_s = time.perf_counter() - t0
    assert store.stats["build"] == 1, store.stats

    # Warm: T fetches against the populated store with a cold LRU —
    # one disk hit, then T-1 in-process hits (the multi-trial cell
    # shape).
    clear_memory_cache()
    store = TopologyStore(store_dir)
    t0 = time.perf_counter()
    for _ in range(trials):
        _warm_trial(spec, n, store, with_spanner)
    warm_s = time.perf_counter() - t0
    assert store.stats["build"] == 0, store.stats
    assert store.stats["hit_disk"] == 1, store.stats

    return {
        "workload": name,
        "n": n,
        "trials": trials,
        "legacy_s": legacy_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": legacy_s / warm_s if warm_s > 0 else 0.0,
    }


def run_bench(
    sizes=DEFAULT_SIZES, trials: int = DEFAULT_TRIALS, quiet: bool = False
) -> dict:
    cases = []
    store_root = Path(tempfile.mkdtemp(prefix="repro-topo-bench-"))
    try:
        for name, spec in CASES:
            for n in sizes:
                rec = run_case(name, spec, n, trials, store_root)
                cases.append(rec)
                if not quiet:
                    print(
                        f"{name:12s} n={n:5d} trials={trials}  "
                        f"legacy {rec['legacy_s']*1e3:8.1f} ms  "
                        f"cold {rec['cold_s']*1e3:7.1f} ms  "
                        f"warm {rec['warm_s']*1e3:7.1f} ms  "
                        f"({rec['warm_speedup']:6.1f}x warm speedup)"
                    )
    finally:
        clear_memory_cache()
        shutil.rmtree(store_root, ignore_errors=True)
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "profile": PROFILE,
        "trials": trials,
        "cases": cases,
    }


def validate(payload: dict) -> list:
    """Schema problems in a bench payload (empty list = valid)."""
    problems = []
    for key in ("schema", "created", "python", "profile", "cases"):
        if key not in payload:
            problems.append(f"missing top-level field {key!r}")
    for i, case in enumerate(payload.get("cases", [])):
        for f in CASE_FIELDS:
            if f not in case:
                problems.append(f"case #{i} missing field {f!r}")
    if not payload.get("cases"):
        problems.append("no cases recorded")
    return problems


# ----------------------------------------------------------------------
# pytest hook: a tiny smoke run so `pytest benchmarks/` covers the bench
# ----------------------------------------------------------------------
def test_topology_bench_smoke():
    payload = run_bench(sizes=(64,), trials=2, quiet=True)
    assert validate(payload) == []
    for case in payload["cases"]:
        assert case["legacy_s"] > 0
        assert case["warm_s"] > 0
        assert case["warm_speedup"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_topology.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="network sizes to measure (default: %(default)s)",
    )
    parser.add_argument(
        "--trials", type=int, default=DEFAULT_TRIALS,
        help="trials per cell (the T in T-x-rebuild; default: 6)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: tiny sizes, schema validation, no baseline "
        "overwrite (writes to --out only if given explicitly)",
    )
    args = parser.parse_args(argv)

    if args.check:
        payload = run_bench(sizes=(64,), trials=2)
        problems = validate(payload)
        if problems:
            for p in problems:
                print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
            return 1
        if args.out != parser.get_default("out"):
            Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {args.out}")
        print("bench check ok")
        return 0

    payload = run_bench(sizes=tuple(args.sizes), trials=args.trials)
    problems = validate(payload)
    if problems:
        for p in problems:
            print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
        return 1
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
