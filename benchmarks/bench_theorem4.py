"""Table 1, row "Theorem 4" — sync KT1 LOCAL FastWakeUp.

Paper claims: 10 * rho_awk rounds; O(n^{3/2} sqrt(log n)) messages
w.h.p.

Reproduction: (a) message sweep with everyone awake (the message-heavy
regime the n^{3/2} bound targets), fitting the exponent after stripping
sqrt(log n); (b) round-count check against 10 * rho_awk across
single-source workloads of growing awake distance.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import fit_power_law_deloged
from repro.analysis.report import print_table
from repro.core.fast_wakeup import FastWakeUp
from repro.experiments.sweeps import dense_er_all_awake, sweep
from repro.graphs.generators import grid_graph
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@pytest.fixture(scope="module")
def message_sweep(small_bench_sizes):
    sizes = [n * 2 for n in small_bench_sizes]  # 64..256
    return sweep(
        FastWakeUp,
        dense_er_all_awake(p=0.5, seed=3),
        sizes=sizes,
        engine="sync",
        knowledge=Knowledge.KT1,
        bandwidth="LOCAL",
        trials=3,
        seed=5,
    )


def test_theorem4_message_shape(message_sweep):
    rows = [
        {
            **r.as_dict(),
            "bound": r.n**1.5 * math.sqrt(math.log(r.n)),
            "ratio": r.messages / (r.n**1.5 * math.sqrt(math.log(r.n))),
        }
        for r in message_sweep
    ]
    print_table(rows, title="Theorem 4: FastWakeUp messages (all awake, dense)")
    ns = [r.n for r in message_sweep]
    fit = fit_power_law_deloged(
        ns, [r.messages for r in message_sweep], 0.5
    )
    print(f"messages ~ n^{fit.exponent:.3f} * sqrt(log n) (r^2={fit.r_squared:.3f})")
    # The n^{3/2} regime: well below the naive n^2 broadcast, at or
    # under 3/2 (sparser-than-worst-case inputs may fit lower).
    assert 1.0 <= fit.exponent <= 1.7


def test_theorem4_round_bound():
    rows = []
    for side in (6, 10, 14):
        g = grid_graph(side, side)
        rho = awake_distance(g, [0])
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=2)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, FastWakeUp(), adversary, engine="sync", seed=3)
        rows.append(
            {
                "n": g.num_vertices,
                "rho": rho,
                "rounds": r.time_all_awake,
                "10rho": 10 * rho,
                "ratio": r.time_all_awake / rho,
            }
        )
        assert r.all_awake
        assert r.time_all_awake <= 10 * rho + 10
    print_table(rows, title="Theorem 4: rounds vs 10 * rho_awk (grid, corner wake)")


def test_theorem4_beats_naive_broadcast_on_dense():
    """All-awake K-dense graph: FastWakeUp's capture mechanism beats
    everyone-broadcasts."""
    from repro.graphs.generators import complete_graph

    n = 150
    g = complete_graph(n)
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    adversary = Adversary(
        WakeSchedule.all_at_once(list(g.vertices())), UnitDelay()
    )
    r = run_wakeup(setup, FastWakeUp(), adversary, engine="sync", seed=7)
    naive = n * (n - 1)
    print(f"\nK_{n} all awake: fast-wakeup={r.messages} vs naive={naive}")
    assert r.messages < naive


def test_theorem4_representative_run(benchmark):
    g = grid_graph(12, 12)
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())

    def run():
        return run_wakeup(setup, FastWakeUp(), adversary, engine="sync", seed=5)

    result = benchmark(run)
    assert result.all_awake
