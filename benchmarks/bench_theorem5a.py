"""Table 1, row "Theorem 5(A)" — sqrt-threshold advice, async KT0
CONGEST.

Paper claims: O(D) time, O(n^{3/2}) messages, max advice
O(sqrt(n) log n), average advice O(log n).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.report import print_table
from repro.core.sqrt_advice import SqrtThresholdAdvice
from repro.experiments.sweeps import er_single_wake, sweep
from repro.graphs.generators import caterpillar_graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@pytest.fixture(scope="module")
def t5a_sweep(bench_sizes):
    return sweep(
        SqrtThresholdAdvice,
        er_single_wake(avg_degree=6.0, seed=17),
        sizes=bench_sizes,
        knowledge=Knowledge.KT0,
        bandwidth="CONGEST",
        trials=3,
        seed=4,
    )


def test_theorem5a_bounds(t5a_sweep):
    rows = [
        {
            **r.as_dict(),
            "msg_bound": r.n**1.5,
            "adv_bound": math.isqrt(r.n) * math.log2(r.n),
        }
        for r in t5a_sweep
    ]
    print_table(rows, title="Theorem 5A: sqrt-threshold advice")
    for r in t5a_sweep:
        assert r.messages <= 2 * r.n**1.5
        assert r.advice_max_bits <= 4 * math.isqrt(r.n) * math.log2(r.n) + 16
        assert r.advice_avg_bits <= 8 * math.log2(r.n)
        assert r.time_all_awake <= 3 * r.rho_awk + 3


def test_theorem5a_max_advice_capped_below_cor1():
    """On high-tree-degree workloads 5A's max advice is polynomially
    below Corollary 1's (that is its whole point)."""
    from repro.core.fip06 import Fip06TreeAdvice

    g = caterpillar_graph(4, 100)  # spine degrees ~100
    setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
    a_5a = SqrtThresholdAdvice().compute_advice(setup)
    a_c1 = Fip06TreeAdvice().compute_advice(setup)
    print(
        f"\ncaterpillar n={g.num_vertices}: 5A max advice {a_5a.max_bits}b "
        f"vs Cor1 {a_c1.max_bits}b"
    )
    assert a_5a.max_bits < a_c1.max_bits


def test_theorem5a_message_blowup_bounded_by_high_degree_count():
    """Messages exceed 2(n-1) only by the high-degree broadcasts."""
    g = caterpillar_graph(6, 30)
    n = g.num_vertices
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
    r = run_wakeup(
        setup, SqrtThresholdAdvice(), adversary, engine="async", seed=2
    )
    # <= 6 spine nodes broadcast (threshold sqrt(186) ~ 13 < 31).
    assert r.messages <= 2 * n + 6 * g.max_degree()


def test_theorem5a_representative_run(benchmark):
    factory = er_single_wake(avg_degree=6.0, seed=17)
    graph, awake = factory(256)
    setup = make_setup(graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())

    def run():
        return run_wakeup(
            setup, SqrtThresholdAdvice(), adversary, engine="async", seed=5
        )

    result = benchmark(run)
    assert result.all_awake
