"""Table 1, row "Corollary 2" — the k = ceil(log n) instantiation of
Theorem 6: O(rho log^2 n) time, O(n log^2 n) messages, O(log^2 n)
advice.  All three measures optimal up to polylog factors.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.analysis.fitting import fit_power_law_deloged
from repro.analysis.report import print_table
from repro.core.spanner_advice import LogSpannerAdvice
from repro.experiments.parallel import ParallelSweepExecutor
from repro.experiments.sweeps import er_single_wake, parallel_sweep
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@pytest.fixture(scope="module")
def cor2_sweep(bench_sizes):
    # Executor-routed (see bench_theorem3.py for the knobs).
    rows, _ = parallel_sweep(
        "log-spanner-advice",
        {"kind": "er_single_wake", "avg_degree": 8.0, "seed": 29},
        sizes=bench_sizes,
        executor=ParallelSweepExecutor(
            workers=int(os.environ.get("REPRO_BENCH_WORKERS", "0")),
            use_cache=False,
        ),
        knowledge="KT0",
        bandwidth="CONGEST",
        trials=3,
        seed=8,
    )
    return rows


def test_corollary2_near_linear_messages(cor2_sweep):
    rows = [
        {
            **r.as_dict(),
            "nlog2": r.n * math.log2(r.n) ** 2,
            "ratio": r.messages / (r.n * math.log2(r.n) ** 2),
        }
        for r in cor2_sweep
    ]
    print_table(rows, title="Corollary 2: log-spanner advice")
    from repro.analysis.fitting import fit_power_law

    raw = fit_power_law(
        [r.n for r in cor2_sweep], [r.messages for r in cor2_sweep]
    )
    print(f"messages ~ n^{raw.exponent:.3f} raw (r^2={raw.r_squared:.3f})")
    # O(n log^2 n): the raw exponent sits just above 1 and decisively
    # below the flooding exponent on these dense inputs.
    assert 0.9 <= raw.exponent <= 1.4
    # and the n log^2 n normalization stays bounded across the sweep:
    ratios = [r.messages / (r.n * math.log2(r.n) ** 2) for r in cor2_sweep]
    assert max(ratios) <= 4 * min(ratios)


def test_corollary2_polylog_advice(cor2_sweep):
    for r in cor2_sweep:
        assert r.advice_avg_bits <= 4 * math.log2(r.n) ** 2


def test_corollary2_time_rho_polylog(cor2_sweep):
    for r in cor2_sweep:
        assert r.time_all_awake <= 4 * max(1, r.rho_awk) * math.log2(r.n) ** 2


def test_corollary2_dominates_table_row(cor2_sweep):
    """Corollary 2's selling point vs Corollary 1: polylog max advice
    (vs O(n)) at polylog multiplicative cost in time and messages."""
    from repro.core.fip06 import Fip06TreeAdvice

    n = 256
    factory = er_single_wake(avg_degree=8.0, seed=29)
    graph, awake = factory(n)
    setup = make_setup(graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    cor2 = run_wakeup(setup, LogSpannerAdvice(), adversary, engine="async", seed=2)
    cor1 = run_wakeup(setup, Fip06TreeAdvice(), adversary, engine="async", seed=2)
    print(
        f"\nn={n}: cor2 advice max {cor2.advice_max_bits}b, msgs {cor2.messages} | "
        f"cor1 advice max {cor1.advice_max_bits}b, msgs {cor1.messages}"
    )
    assert cor2.messages <= cor1.messages * math.log2(n) ** 2


def test_corollary2_representative_run(benchmark):
    factory = er_single_wake(avg_degree=8.0, seed=29)
    graph, awake = factory(256)
    setup = make_setup(graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())

    def run():
        return run_wakeup(
            setup, LogSpannerAdvice(), adversary, engine="async", seed=5
        )

    result = benchmark(run)
    assert result.all_awake
    # Per-phase profile (repro.obs): advice decoding vs the probe/next
    # wake-up traffic, into the pytest-benchmark results JSON.
    profile = result.phase_profile()
    benchmark.extra_info["phases"] = profile
    print_table(
        [{"phase": name, **prof} for name, prof in profile.items()],
        title="Corollary 2 phase profile (n=256)",
    )
    for phase in LogSpannerAdvice.phases:
        assert phase in profile, f"missing declared phase {phase!r}"
    # Decoding is pure computation; the wake wave carries the messages.
    assert profile["advice-decode"]["messages"] == 0
    assert profile["spanner-probe"]["messages"] == result.messages
