"""Table 1, row "Theorem 1" (lower bound) — the advice/message frontier
on class 𝒢, KT0 with advice.

Paper claim: expected messages <= n^2 / (2^{beta+4} log2 n) forces
average advice Omega(beta).  Executable validation: the matching
upper bound (prefix advice) realizes every point of the frontier —
messages * 2^beta stays ~n^2 while advice grows linearly in beta — and
the oracle's advice measurably carries ~beta bits of information about
each hidden pendant port (the Lemma-3 entropy argument).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.information import mutual_information
from repro.analysis.report import print_table
from repro.core.prefix_advice import PrefixAdvice
from repro.lowerbounds.graph_g import build_class_g
from repro.lowerbounds.theorem1 import (
    advice_port_samples,
    run_prefix_tradeoff,
    theorem1_message_bound,
)
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@pytest.fixture(scope="module")
def frontier():
    return run_prefix_tradeoff(n=48, betas=[0, 1, 2, 3, 4, 5], trials=2, seed=3)


def test_theorem1_frontier_table(frontier):
    rows = [
        {
            "beta": p.beta,
            "messages": p.messages,
            "msgs*2^b": p.product,
            "adv_avg": p.advice_avg_bits,
            "thm1_threshold": p.lb_message_bound,
        }
        for p in frontier
    ]
    print_table(
        rows,
        title="Theorem 1 frontier on 𝒢(48): prefix advice (n^2/2^beta msgs)",
    )


def test_theorem1_geometric_message_decay(frontier):
    msgs = [p.messages for p in frontier]
    assert msgs == sorted(msgs, reverse=True)
    # 5 doublings of the advice-bucket resolution should cut the
    # center-probe traffic by >= 8x.
    assert msgs[-1] < msgs[0] / 8


def test_theorem1_product_stays_quadratic(frontier):
    """messages*2^beta (minus the O(n·2^beta) broadcaster overhead)
    stays within a constant factor of n^2 across the whole sweep."""
    core = [p.product - p.n * 2**p.beta for p in frontier]
    assert max(core) <= 4 * min(core)
    n = frontier[0].n
    for val in core:
        assert n**2 / 4 <= val <= 4 * n**2


def test_theorem1_no_point_violates_the_bound(frontier):
    """Whenever a point's messages are below the Theorem-1 threshold,
    its average advice respects Omega(beta)."""
    for p in frontier:
        if p.messages <= theorem1_message_bound(p.n, p.beta):
            assert p.advice_avg_bits >= (p.beta - 2) / 6


def test_theorem1_information_content():
    """The Lemma-3 core, measured: I[X_i : advice] grows ~1 bit per
    unit of beta and never exceeds beta."""
    rows = []
    for beta in (0, 1, 2, 3, 4):
        pairs = advice_port_samples(n=16, beta=beta, samples=500, seed=beta)
        mi = mutual_information(pairs)
        rows.append({"beta": beta, "I[X:Y] bits": mi})
        assert mi <= beta + 0.6
    print_table(rows, title="Theorem 1: advice/port mutual information")
    mis = [r["I[X:Y] bits"] for r in rows]
    assert mis == sorted(mis)
    assert mis[4] - mis[0] >= 2.0


def test_theorem1_representative_run(benchmark):
    inst = build_class_g(48)
    setup = inst.make_setup(seed=1)
    adversary = Adversary(WakeSchedule.all_at_once(inst.centers), UnitDelay())

    def run():
        return run_wakeup(
            setup, PrefixAdvice(beta=3), adversary, engine="async", seed=2
        )

    result = benchmark(run)
    assert result.all_awake


def test_theorem1_empirical_adversarial_frontier():
    """The model checker's searched adversary, reported next to the
    analytic bound: on class 𝒢 the beam-searched schedule must meet or
    beat the best UniformRandomDelay sample at the same n, and the
    schedule is a replayable artifact (see docs/modelcheck.md)."""
    from repro.check.controller import ReplayDelay
    from repro.check.worstcase import random_baseline, worstcase_search
    from repro.core.flooding import Flooding

    inst = build_class_g(8)
    algo = Flooding()

    def world():
        setup = inst.make_setup(seed=1)
        sched = WakeSchedule({v: 0.0 for v in inst.centers})
        return setup, algo, Adversary(sched, UnitDelay())

    rows = []
    for objective in ("time", "messages"):
        wc = worstcase_search(
            world, objective, beam_width=3, horizon=6, branch_cap=2
        )
        base = random_baseline(world, objective, trials=16, seed=9)
        rows.append(
            {
                "objective": objective,
                "random best": round(base, 4),
                "searched": round(wc.score, 4),
                "policy": wc.policy,
            }
        )
        assert wc.score >= base
        # The frontier point replays bit-identically in the plain engine.
        setup, _, adv = world()
        replayed = run_wakeup(
            setup, algo, Adversary(adv.schedule, ReplayDelay(wc.delays)),
            engine="async", seed=0, require_all_awake=False,
        )
        assert replayed.messages == wc.result.messages
        assert replayed.time == wc.result.time
    print_table(
        rows, title="Theorem 1: empirical adversarial frontier on 𝒢(8)"
    )


def test_theorem1_committed_atlas_frontier():
    """The committed stochastic frontier (``ATLAS.json``) at sizes the
    beam search cannot reach, reported next to the small-n frontier
    above: every live flooding/time entry must strictly beat its
    recorded random-delay baseline and replay bit-identically through
    the plain engine.  Stale entries (salts superseded by code edits)
    are shown but not asserted — ``repro atlas run`` refreshes them."""
    from pathlib import Path

    from repro.opt import entry_is_stale, load_atlas, replay_entry

    path = Path(__file__).resolve().parents[1] / "ATLAS.json"
    if not path.exists():
        pytest.skip("no committed ATLAS.json")
    atlas = load_atlas(path)
    entries = [
        (key, e)
        for key, e in sorted(atlas.get("entries", {}).items())
        if e["algorithm"] == "flooding" and e["objective"] == "time"
    ]
    if not entries:
        pytest.skip("no flooding/time entries in the committed atlas")
    rows = []
    for key, entry in entries:
        stale = entry_is_stale(entry)
        rows.append(
            {
                "n": entry["n"],
                "optimizer": entry["optimizer"],
                "random best": round(float(entry["baseline"]), 4),
                "searched": round(float(entry["score"]), 4),
                "salts": "stale" if stale else "live",
            }
        )
        if stale:
            continue
        assert float(entry["score"]) > float(entry["baseline"]), key
        ok, detail = replay_entry(entry)
        assert ok, f"{key}: {detail}"
    print_table(
        rows,
        title="Theorem 1: committed stochastic frontier (ATLAS.json)",
    )
