"""Figure 2 — the class-𝒢ₖ construction (Fact 1 across instances).

Checks the three structural claims on every buildable instance and
prints a table of their parameters, plus the D(k, q) girth profile
against the [LUW95] guarantee.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import print_table
from repro.graphs.highgirth import dkq_graph
from repro.graphs.traversal import girth
from repro.lowerbounds.graph_gk import build_class_gk, verify_fact1

INSTANCES = [(3, 2), (3, 3), (3, 4), (5, 2), (4, 3)]


@pytest.fixture(scope="module")
def built():
    return {(k, q): build_class_gk(k, q) for k, q in INSTANCES}


def test_fig2_fact1_table(built):
    rows = []
    for (k, q), inst in built.items():
        checks = verify_fact1(inst)
        g = girth(inst.graph)
        rows.append(
            {
                "k": k,
                "q": q,
                "n/side": inst.n,
                "center_deg": inst.center_degree,
                "edges": inst.graph.num_edges,
                "n^(1+1/k)": round(inst.n ** (1 + 1 / k)),
                "girth": g,
                "guarantee": inst.dkq.guaranteed_girth,
                "fact1_ok": all(checks.values()),
            }
        )
        assert all(checks.values()), (k, q, checks)
    print_table(rows, title="Figure 2 / Fact 1: class 𝒢ₖ instances")


def test_fig2_girth_scales_with_k():
    girths = {}
    for k, q in ((2, 3), (3, 3), (5, 2)):
        girths[k] = girth(dkq_graph(k, q).graph)
    # girth is nondecreasing in k and strictly grows over the range
    # (small instances can overshoot their guarantee, so only the
    # endpoints are compared strictly).
    assert girths[2] <= girths[3] <= girths[5]
    assert girths[5] > girths[2]


def test_fig2_edge_density_matches_bound(built):
    """|E| / n^{1+1/k} is a constant across instances (Fact 1.2)."""
    ratios = []
    for (k, q), inst in built.items():
        ratios.append(inst.core_edge_count() / inst.n ** (1 + 1 / k))
    assert all(0.9 <= r <= 1.1 for r in ratios)


def test_fig2_representative_run(benchmark):
    def run():
        return build_class_gk(3, 3)

    inst = benchmark(run)
    assert inst.graph.num_vertices == 3 * 27
