"""Figure 3 — the ID-swap indistinguishability experiment (Lemmas 5/6).

For each instance: run the full-information transcript flood on G[rho]
and on the w*/u ID-swapped G[rho'], and verify that within k + 2 time
units the center's view differs only through the direct edges (plus
echoes of what arrived there first) — the executable core of the
Theorem-2 proof.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import print_table
from repro.lowerbounds.theorem2 import id_swap_transcript_check

CASES = [(3, 2), (3, 3), (3, 4)]


def test_fig3_swap_experiments():
    rows = []
    for k, q in CASES:
        for u_index in (0, 1):
            exp = id_swap_transcript_check(k, q, seed=7, u_index=u_index)
            rows.append(
                {
                    "k": k,
                    "q": q,
                    "u_idx": u_index,
                    "horizon": exp.horizon,
                    "indistinguishable": exp.transcripts_match,
                    "echoes_only": exp.echoes_only,
                    "swap_visible_on_direct": exp.direct_edge_differs,
                }
            )
            assert exp.transcripts_match
            assert exp.echoes_only
            assert exp.direct_edge_differs
    print_table(
        rows,
        title="Figure 3 / Lemmas 5-6: ID-swap indistinguishability on 𝒢ₖ",
    )


def test_fig3_multiple_centers():
    for ci in (0, 3, 7):
        exp = id_swap_transcript_check(3, 2, seed=9, center_index=ci)
        assert exp.transcripts_match and exp.echoes_only


def test_fig3_representative_run(benchmark):
    def run():
        return id_swap_transcript_check(3, 2, seed=1)

    exp = benchmark(run)
    assert exp.transcripts_match
