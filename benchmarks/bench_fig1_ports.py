"""Figure 1 — unused-port independence on class 𝒢 (the KT0 argument).

The figure's point: whatever a center learns from messages and advice,
the mapping of its *unused* ports stays (conditionally) uniform.  We
measure the two quantities the surrounding text manipulates:

* the Sml_i event frequencies (Lemma 2): how many centers touch at most
  n/2^beta ports;
* the conditional uncertainty of the pendant port given the advice:
  H[X_i | Y_i] measured over resampled port mappings, compared with
  Lemma 3's log2(n / 2^{beta-1}) + O(1) ceiling.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.information import conditional_entropy, entropy
from repro.analysis.report import print_table
from repro.lowerbounds.theorem1 import (
    advice_port_samples,
    small_port_usage_fraction,
)


def test_fig1_sml_event_frequencies():
    rows = []
    n = 64
    for beta in (0, 1, 2, 3, 4):
        frac = small_port_usage_fraction(n, beta=beta, seed=1)
        rows.append(
            {"beta": beta, "threshold n/2^b": n / 2**beta, "frac_small": frac}
        )
    print_table(rows, title="Figure 1 / Lemma 2: Sml_i frequencies on 𝒢(64)")
    fracs = [r["frac_small"] for r in rows]
    # beta=0 threshold (= n) is below the degree n+1: nobody is small;
    # from beta>=1 the prefix scheme probes ~deg/2^beta << n/2^beta.
    assert fracs[0] == 0.0
    assert fracs[2] >= 0.5
    assert fracs[1:] == sorted(fracs[1:])


def test_fig1_conditional_port_entropy():
    """H[X_i | advice] ~ log2(deg) - beta: each advice bit halves the
    center's candidate set, and no more (Lemma 3's ceiling)."""
    rows = []
    n = 16
    deg = n + 1
    for beta in (0, 1, 2, 3):
        pairs = advice_port_samples(n=n, beta=beta, samples=600, seed=beta)
        h_x = entropy([x for x, _ in pairs])
        h_cond = conditional_entropy(pairs)
        rows.append(
            {
                "beta": beta,
                "H[X]": h_x,
                "H[X|Y]": h_cond,
                "log2(deg)-beta": math.log2(deg) - beta,
            }
        )
    print_table(rows, title="Figure 1 / Lemma 3: residual port uncertainty")
    for row in rows:
        # within estimation noise of the predicted residual entropy
        assert abs(row["H[X|Y]"] - max(0, row["log2(deg)-beta"])) <= 0.8


def test_fig1_representative_run(benchmark):
    def run():
        return small_port_usage_fraction(48, beta=2, seed=2)

    frac = benchmark(run)
    assert 0.0 <= frac <= 1.0
