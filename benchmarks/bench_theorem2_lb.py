"""Table 1, row "Theorem 2" (lower bound) — time-restricted message
complexity on class 𝒢ₖ, KT1 LOCAL.

Paper claim: any (k+1)-time algorithm sends Omega(n^{1+1/k}) messages.
Executable validation: (a) the one-shot matching upper bound tracks
n^{1+1/k} exactly across q; (b) every implemented constant-time-capable
algorithm pays at least that; (c) the unrestricted-time DFS undercuts
edge-proportional traffic, showing the restriction is necessary.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import best_exponent_model
from repro.analysis.report import print_table
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.flooding import Flooding
from repro.lowerbounds.theorem2 import OneShotProbe, run_time_restricted


@pytest.fixture(scope="module")
def probe_points():
    # k = 3: n = q^3 per side.
    return [
        run_time_restricted(3, q, OneShotProbe(), seed=q)
        for q in (3, 4, 5, 7)
    ]


def test_theorem2_matching_upper_bound_shape(probe_points):
    rows = [
        {
            "k": p.k,
            "q": p.q,
            "n": p.n,
            "messages": p.messages,
            "n^(1+1/k)": p.lb_bound,
            "ratio": p.messages / p.lb_bound,
        }
        for p in probe_points
    ]
    print_table(
        rows,
        title="Theorem 2: one-shot probe on 𝒢ₖ (matches the LB shape)",
    )
    for p in probe_points:
        assert 0.9 <= p.messages / p.lb_bound <= 2.5
    ns = [p.n for p in probe_points]
    ys = [p.messages for p in probe_points]
    best, errs = best_exponent_model(ns, ys, [1.0, 4 / 3, 1.5, 2.0])
    print(f"best exponent {best:.3f} (errors {errs})")
    assert best == pytest.approx(4 / 3)


def test_theorem2_constant_time_algorithms_pay_the_bound(probe_points):
    """Flooding (the other constant-time option) pays even more."""
    for p in probe_points[:2]:
        flood = run_time_restricted(p.k, p.q, Flooding(), seed=1)
        assert flood.messages >= p.lb_bound
        assert flood.time <= p.k + 2


def test_theorem2_time_restriction_is_necessary():
    """Unrestricted time escapes the bound: DFS sends less than
    edge-count traffic but takes Theta(n) time (Thm 3 remark)."""
    k, q = 3, 5
    flood = run_time_restricted(k, q, Flooding(), seed=2)
    dfs = run_time_restricted(k, q, DfsWakeUp(), seed=2)
    print(
        f"\n𝒢_3(q=5): flooding {flood.messages} msgs in {flood.time:.0f}t "
        f"vs dfs {dfs.messages} msgs in {dfs.time:.0f}t"
    )
    assert dfs.messages < flood.messages
    assert dfs.time > 20 * flood.time


def test_theorem2_representative_run(benchmark):
    def run():
        return run_time_restricted(3, 5, OneShotProbe(), seed=3)

    point = benchmark(run)
    assert point.messages > 0


def test_theorem2_empirical_adversarial_frontier():
    """Worst-case schedule search on class 𝒢ₖ: the searched adversary's
    wake-up time meets or beats the best random-delay sample, giving an
    empirical frontier next to the analytic Omega(n^{1+1/k}) bound."""
    from repro.check.worstcase import random_baseline, worstcase_search
    from repro.lowerbounds.graph_gk import build_class_gk
    from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule

    inst = build_class_gk(3, 3)
    probe = OneShotProbe()

    def world():
        setup = inst.make_setup(seed=1)
        sched = WakeSchedule({v: 0.0 for v in inst.centers})
        return setup, probe, Adversary(sched, UnitDelay())

    wc = worstcase_search(
        world, "time", beam_width=3, horizon=6, branch_cap=2
    )
    base = random_baseline(world, "time", trials=16, seed=9)
    print_table(
        [
            {
                "objective": "time",
                "random best": round(base, 4),
                "searched": round(wc.score, 4),
                "policy": wc.policy,
            }
        ],
        title="Theorem 2: empirical adversarial frontier on 𝒢ₖ(k=3, q=3)",
    )
    assert wc.score >= base
    # One-shot probes finish within one tau even adversarially.
    assert wc.score <= 1.0 + 1e-9


def test_theorem2_committed_atlas_frontier():
    """The committed stochastic frontier (``ATLAS.json``) for the
    unrestricted-time DFS — the algorithm this bench uses to show the
    time restriction is necessary; the adversary stretches exactly the
    resource (wake-up time) DFS trades away for its message savings.
    Sizes are ones the exhaustive and beam searches cannot reach:
    every live entry must strictly beat its recorded random-delay
    baseline and replay bit-identically through the plain engine.
    Stale entries are shown, not asserted."""
    from pathlib import Path

    from repro.opt import entry_is_stale, load_atlas, replay_entry

    path = Path(__file__).resolve().parents[1] / "ATLAS.json"
    if not path.exists():
        pytest.skip("no committed ATLAS.json")
    atlas = load_atlas(path)
    entries = [
        (key, e)
        for key, e in sorted(atlas.get("entries", {}).items())
        if e["algorithm"] == "dfs-rank" and e["objective"] == "time"
    ]
    if not entries:
        pytest.skip("no dfs-rank/time entries in the committed atlas")
    rows = []
    for key, entry in entries:
        stale = entry_is_stale(entry)
        rows.append(
            {
                "n": entry["n"],
                "optimizer": entry["optimizer"],
                "random best": round(float(entry["baseline"]), 4),
                "searched": round(float(entry["score"]), 4),
                "salts": "stale" if stale else "live",
            }
        )
        if stale:
            continue
        assert float(entry["score"]) > float(entry["baseline"]), key
        ok, detail = replay_entry(entry)
        assert ok, f"{key}: {detail}"
    print_table(
        rows,
        title="Theorem 2: committed stochastic frontier (ATLAS.json)",
    )
