"""Sec 1.3 demonstration — star-sampling algorithms fail under
adversarial wake-up.

The paper observes that the King–Mashregi initialization (become a
"star" w.p. 1/sqrt(n log n); silent high-degree non-stars) deadlocks
with probability ~1 - 1/sqrt(n log n) when the adversary wakes exactly
one high-degree node.  We measure that failure rate and contrast it
with the paper's always-correct algorithms on the same inputs.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.report import print_table
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.star_broadcast import StarBroadcast
from repro.graphs.generators import complete_graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def failure_rate(n: int, trials: int, p: float | None = None) -> float:
    g = complete_graph(n)
    fails = 0
    for seed in range(trials):
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="CONGEST", seed=seed)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(
            setup,
            StarBroadcast(star_probability=p, degree_threshold=5.0),
            adversary,
            engine="async",
            seed=seed,
            require_all_awake=False,
        )
        if not r.all_awake:
            fails += 1
    return fails / trials


def test_star_failure_rate_tracks_prediction():
    rows = []
    trials = 60
    for n in (32, 64, 128):
        n_hat = 2 ** math.ceil(math.log2(n))
        predicted = 1.0 - 1.0 / math.sqrt(n_hat * math.log(n_hat))
        measured = failure_rate(n, trials)
        rows.append(
            {"n": n, "predicted_fail": predicted, "measured_fail": measured}
        )
        assert measured >= predicted - 0.25
    print_table(
        rows,
        title="Sec 1.3: star-sampling failure under single high-degree wake-up",
    )


def test_paper_algorithms_never_fail_on_same_input():
    g = complete_graph(64)
    for seed in range(20):
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=seed)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=seed)
        assert r.all_awake  # Las Vegas: correctness with certainty


def test_star_failure_representative_run(benchmark):
    def run():
        return failure_rate(32, trials=10)

    rate = benchmark(run)
    assert 0.0 <= rate <= 1.0
