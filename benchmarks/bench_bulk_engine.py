"""Bulk frontier engine benchmark: sync lane vs vectorized lane.

The bulk engine's reason to exist is throughput at scales the
per-message engines cannot reach (n ~ 10^5-10^6, the regime where the
paper's asymptotic separations become visible).  This bench measures
both lanes on the identical workload — flooding on a connected ER graph
of average degree 8, a handful of adversary-woken nodes — at
n in {16384, 65536}, through the same compiled-topology path the sweep
executor uses (so neither lane is charged for graph construction).

"Events" is the same unit ``bench_engine_hotpath.py`` uses for the sync
engine — deliveries + wakes (= messages + awake count) — so
``events_per_sec`` is directly comparable across the two baseline
files.  Each bulk case records ``speedup_vs_sync`` against the sync
case at the same n; the acceptance target for the committed baseline is
>= 10x on flooding at n = 65536.

Results land in ``BENCH_bulk.json`` (repo root); the committed copy is
the baseline ``scripts/check_bench_baseline.py --profile bulk`` guards
against >30% regressions.  Run as a script:

    PYTHONPATH=src python benchmarks/bench_bulk_engine.py
    PYTHONPATH=src python benchmarks/bench_bulk_engine.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.core.registry import get_algorithm
from repro.graphs.compile import clear_memory_cache, compiled_topology
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, WakeSchedule
from repro.sim.bulk import HAS_BULK
from repro.sim.runner import run_wakeup

# Envelope v2: the unified BENCH_*.json schema (schema, created,
# python, profile, cases); the profile names which PROFILES entry
# in repro.analysis.perf guards it.
SCHEMA = 2
PROFILE = "bulk"

DEFAULT_SIZES = (16384, 65536)
AVG_DEGREE = 8.0
ENGINES = ("sync", "bulk")

#: Per-case schema shared with BENCH_engine.json (the baseline checker
#: refuses files without these fields); bulk cases additionally carry
#: ``speedup_vs_sync``.
CASE_FIELDS = (
    "algorithm",
    "engine",
    "n",
    "events",
    "messages",
    "wall_s",
    "events_per_sec",
)


def _build_world(n: int, seed: int = 7):
    """Setup + adversary via the compiled-topology path (one build per
    size, shared by both lanes — and handing the bulk engine its CSR
    arrays for free, exactly as executor-routed cells do)."""
    topo = compiled_topology(
        {"kind": "er_single_wake", "avg_degree": AVG_DEGREE, "seed": seed},
        n,
    )
    setup = make_setup(
        topo.graph(), knowledge=Knowledge.KT0, seed=seed + n, compiled=topo
    )
    verts = sorted(topo.graph().vertices(), key=setup.id_of)
    awake = verts[:: max(1, n // 4)][:4]
    adversary = Adversary(WakeSchedule.all_at_once(awake))
    return setup, adversary


def run_case(engine: str, n: int, repeats: int = 3) -> dict:
    setup, adversary = _build_world(n)
    best_wall = float("inf")
    result = None
    for _ in range(repeats):
        algo = get_algorithm("flooding")
        t0 = time.perf_counter()
        result = run_wakeup(setup, algo, adversary, engine=engine, seed=11)
        wall = time.perf_counter() - t0
        best_wall = min(best_wall, wall)
    assert result.engine == engine, (
        f"expected the {engine} lane, got {result.engine} "
        "(missing repro[bulk] extras?)"
    )
    m = result.metrics
    events = m.messages_total + m.awake_count()
    return {
        "algorithm": "flooding",
        "engine": engine,
        "n": n,
        "events": events,
        "messages": m.messages_total,
        "wall_s": best_wall,
        "events_per_sec": events / best_wall if best_wall > 0 else 0.0,
    }


def run_bench(sizes=DEFAULT_SIZES, repeats: int = 3, quiet: bool = False) -> dict:
    cases = []
    for n in sizes:
        sync_rate = None
        for engine in ENGINES:
            rec = run_case(engine, n, repeats=repeats)
            if engine == "sync":
                sync_rate = rec["events_per_sec"]
            elif sync_rate:
                rec["speedup_vs_sync"] = rec["events_per_sec"] / sync_rate
            cases.append(rec)
            if not quiet:
                extra = (
                    f"  {rec['speedup_vs_sync']:6.1f}x vs sync"
                    if "speedup_vs_sync" in rec
                    else ""
                )
                print(
                    f"flooding {engine:5s} n={n:6d}  "
                    f"{rec['events']:8d} events  "
                    f"{rec['wall_s']*1e3:8.1f} ms  "
                    f"{rec['events_per_sec']:12.0f} events/s{extra}"
                )
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "profile": PROFILE,
        "repeats": repeats,
        "avg_degree": AVG_DEGREE,
        "cases": cases,
    }


def validate(payload: dict) -> list:
    """Schema problems in a bench payload (empty list = valid)."""
    problems = []
    for key in ("schema", "created", "python", "profile", "cases"):
        if key not in payload:
            problems.append(f"missing top-level field {key!r}")
    for i, case in enumerate(payload.get("cases", [])):
        for f in CASE_FIELDS:
            if f not in case:
                problems.append(f"case #{i} missing field {f!r}")
    if not payload.get("cases"):
        problems.append("no cases recorded")
    return problems


# ----------------------------------------------------------------------
# pytest hook: a tiny smoke run so `pytest benchmarks/` covers the bench
# ----------------------------------------------------------------------
@pytest.mark.bulk
def test_bulk_bench_smoke():
    clear_memory_cache()
    payload = run_bench(sizes=(256,), repeats=1, quiet=True)
    assert validate(payload) == []
    by_engine = {c["engine"]: c for c in payload["cases"]}
    assert set(by_engine) == set(ENGINES)
    # Identical metrics across lanes (the conformance contract, visible
    # in the bench output too).
    assert by_engine["sync"]["messages"] == by_engine["bulk"]["messages"]
    assert by_engine["sync"]["events"] == by_engine["bulk"]["events"]
    clear_memory_cache()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_bulk.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
        help="network sizes to measure (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per case; best-of wins (default: 3)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: tiny sizes, single repeat, schema validation, "
        "no baseline overwrite (writes to --out only if given "
        "explicitly)",
    )
    args = parser.parse_args(argv)

    if not HAS_BULK:
        print(
            "repro[bulk] extras (numpy + scipy) not installed; "
            "nothing to measure",
            file=sys.stderr,
        )
        return 1

    if args.check:
        payload = run_bench(sizes=(512,), repeats=1)
        problems = validate(payload)
        if problems:
            for p in problems:
                print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
            return 1
        if args.out != parser.get_default("out"):
            Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {args.out}")
        print("bench check ok")
        return 0

    payload = run_bench(sizes=tuple(args.sizes), repeats=args.repeats)
    problems = validate(payload)
    if problems:
        for p in problems:
            print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
        return 1
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
