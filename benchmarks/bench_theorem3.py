"""Table 1, row "Theorem 3" — async KT1 LOCAL ranked-DFS wake-up.

Paper claim: time and message complexity O(n log n) w.h.p.

Reproduction: sweep n on sparse connected workloads with adversarially
many staggered wake-ups; fit messages/log(n) and time/log(n) to a power
law in n and check the exponent is ~1 (i.e. n·log n overall), and that
DFS beats flooding on message count for dense graphs.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.analysis.fitting import fit_power_law_deloged
from repro.analysis.report import print_table
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.flooding import Flooding
from repro.experiments.parallel import ParallelSweepExecutor
from repro.experiments.sweeps import er_fraction_wake, parallel_sweep
from repro.graphs.generators import complete_graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UniformRandomDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@pytest.fixture(scope="module")
def dfs_sweep(bench_sizes):
    # Routed through the parallel executor; REPRO_BENCH_WORKERS>1 fans
    # the 12 cells across processes, the default runs them inline (the
    # two paths are conformant — tests/test_parallel_executor.py).
    rows, _ = parallel_sweep(
        "dfs-rank",
        {"kind": "er_fraction_wake", "avg_degree": 6.0, "fraction": 0.2,
         "seed": 11},
        sizes=bench_sizes,
        executor=ParallelSweepExecutor(
            workers=int(os.environ.get("REPRO_BENCH_WORKERS", "0")),
            use_cache=False,
        ),
        knowledge="KT1",
        bandwidth="LOCAL",
        trials=3,
        seed=7,
        delay={"kind": "uniform", "seed": 5},
    )
    return rows


def test_theorem3_message_shape(dfs_sweep):
    rows = [
        {
            **r.as_dict(),
            "n_log_n": r.n * math.log(r.n),
            "msg_per_nlogn": r.messages / (r.n * math.log(r.n)),
        }
        for r in dfs_sweep
    ]
    print_table(rows, title="Theorem 3: ranked-DFS wake-up (async KT1 LOCAL)")
    ns = [r.n for r in dfs_sweep]
    fit = fit_power_law_deloged(ns, [r.messages for r in dfs_sweep], 1.0)
    print(f"messages ~ n^{fit.exponent:.3f} * log n (r^2={fit.r_squared:.3f})")
    assert 0.75 <= fit.exponent <= 1.25


def test_theorem3_time_shape(dfs_sweep):
    ns = [r.n for r in dfs_sweep]
    fit = fit_power_law_deloged(ns, [max(1.0, r.time) for r in dfs_sweep], 1.0)
    print(f"time ~ n^{fit.exponent:.3f} * log n (r^2={fit.r_squared:.3f})")
    # DFS time is Theta(n)-ish (a token walks the graph): exponent ~1,
    # comfortably within the O(n log n) claim.
    assert fit.exponent <= 1.25


def test_theorem3_beats_flooding_on_dense_graphs():
    """Who-wins check: on K_n with many wake-ups, DFS << flooding."""
    n = 128
    g = complete_graph(n)
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    schedule = WakeSchedule.random_subset(g, n // 4, seed=3)
    adversary = Adversary(schedule, UniformRandomDelay(seed=2))
    dfs = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=4)
    flood = run_wakeup(setup, Flooding(), adversary, engine="async", seed=4)
    print(
        f"\nK_{n}, {n // 4} adversarial wake-ups: "
        f"dfs={dfs.messages} msgs vs flooding={flood.messages} msgs "
        f"({flood.messages / dfs.messages:.1f}x)"
    )
    assert dfs.messages * 5 < flood.messages


def test_theorem3_representative_run(benchmark):
    g_factory = er_fraction_wake(avg_degree=6.0, fraction=0.2, seed=11)
    graph, awake = g_factory(256)
    setup = make_setup(graph, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    adversary = Adversary(
        WakeSchedule.all_at_once(awake), UniformRandomDelay(seed=5)
    )

    def run():
        return run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=9)

    result = benchmark(run)
    assert result.all_awake
    # Per-phase profile (repro.obs): where the run's time and messages
    # went, into the pytest-benchmark results JSON.
    profile = result.phase_profile()
    benchmark.extra_info["phases"] = profile
    print_table(
        [{"phase": name, **prof} for name, prof in profile.items()],
        title="Theorem 3 phase profile (n=256)",
    )
    for phase in DfsWakeUp.phases:
        assert phase in profile, f"missing declared phase {phase!r}"
    # Every DFS message is attributable to the token machinery.
    assert profile["dfs-token"]["messages"] == result.messages
