"""Table 1, row "Corollary 1" ([FIP06]) — BFS-tree advice, async KT0
CONGEST.

Paper claims: O(D) time, O(n) messages, max advice O(n), average advice
O(log n).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import fit_power_law
from repro.analysis.report import print_table
from repro.core.fip06 import Fip06TreeAdvice
from repro.experiments.sweeps import er_single_wake, sweep
from repro.graphs.generators import grid_graph, star_graph
from repro.graphs.traversal import diameter
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@pytest.fixture(scope="module")
def cor1_sweep(bench_sizes):
    return sweep(
        Fip06TreeAdvice,
        er_single_wake(avg_degree=6.0, seed=13),
        sizes=bench_sizes,
        knowledge=Knowledge.KT0,
        bandwidth="CONGEST",
        trials=3,
        seed=2,
    )


def test_corollary1_linear_messages(cor1_sweep):
    rows = [
        {**r.as_dict(), "msgs_per_n": r.messages / r.n} for r in cor1_sweep
    ]
    print_table(rows, title="Corollary 1: FIP06 tree advice (async KT0 CONGEST)")
    fit = fit_power_law(
        [r.n for r in cor1_sweep], [r.messages for r in cor1_sweep]
    )
    print(f"messages ~ n^{fit.exponent:.3f} (r^2={fit.r_squared:.3f})")
    assert 0.9 <= fit.exponent <= 1.1
    for r in cor1_sweep:
        assert r.messages <= 2 * (r.n - 1)


def test_corollary1_advice_lengths(cor1_sweep):
    for r in cor1_sweep:
        assert r.advice_avg_bits <= 8 * math.log2(r.n)
        assert r.advice_max_bits <= r.n + 2


def test_corollary1_max_advice_hits_linear_on_stars():
    """The O(n) max-advice bound is tight on a star: the center's
    bitmap costs n-1 bits."""
    rows = []
    for n in (64, 128, 256):
        g = star_graph(n)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        advice = Fip06TreeAdvice().compute_advice(setup)
        rows.append(
            {"n": n, "adv_max": advice.max_bits, "adv_avg": advice.average_bits}
        )
        assert advice.max_bits >= n - 1
    print_table(rows, title="Corollary 1: star worst case (max advice ~ n)")


def test_corollary1_time_order_diameter():
    rows = []
    for side in (8, 12, 16):
        g = grid_graph(side, side)
        d = diameter(g)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=3)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, Fip06TreeAdvice(), adversary, engine="async", seed=2)
        rows.append({"n": g.num_vertices, "D": d, "time": r.time_all_awake})
        assert r.time_all_awake <= 2 * d + 1
    print_table(rows, title="Corollary 1: time vs diameter")


def test_corollary1_representative_run(benchmark):
    factory = er_single_wake(avg_degree=6.0, seed=13)
    graph, awake = factory(256)
    setup = make_setup(graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())

    def run():
        return run_wakeup(
            setup, Fip06TreeAdvice(), adversary, engine="async", seed=5
        )

    result = benchmark(run)
    assert result.all_awake
