"""Schedule-search throughput benchmark: schedules/sec through the
controlled engine loop.

The model checker's cost unit is one *controlled run* — a full engine
execution driven through the choice-point protocol, plus invariant
checks.  This bench pins down that throughput for the two modes CI
exercises:

* ``explore`` — exhaustive DFS with sleep-set POR + state dedup on
  flooding workloads (the ``check-smoke`` CI path);
* ``worstcase`` — greedy + beam search on the Theorem-1 class-G
  topology (each beam evaluation is one controlled run).

Results land in ``BENCH_check.json`` (repo root); the committed copy is
the baseline that ``scripts/check_bench_baseline.py --profile check``
guards against >30% regressions.  Run as a script:

    PYTHONPATH=src python benchmarks/bench_schedule_search.py
    PYTHONPATH=src python benchmarks/bench_schedule_search.py --check

``--check`` runs a reduced matrix (fast enough for CI) and validates
the output schema without touching the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.check.explorer import explore
from repro.check.worstcase import worstcase_search
from repro.core.registry import get_algorithm
from repro.graphs.generators import cycle_graph, star_graph
from repro.lowerbounds.graph_g import build_class_g
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule

# Envelope v2: the unified BENCH_*.json schema (schema, created,
# python, profile, cases); the profile names which PROFILES entry
# in repro.analysis.perf guards it.
SCHEMA = 2
PROFILE = "check"

#: (mode, algorithm, graph, n) — the benchmark matrix.
CASES = (
    ("explore", "flooding", "cycle", 4),
    ("explore", "flooding", "star", 5),
    ("explore", "echo-flooding", "cycle", 4),
    ("worstcase", "flooding", "class-g", 8),
)

#: Every per-case record carries exactly these fields; the baseline
#: checker (scripts/check_bench_baseline.py) refuses files without them.
CASE_FIELDS = (
    "mode",
    "algorithm",
    "n",
    "schedules",
    "wall_s",
    "schedules_per_sec",
)


def _world(algorithm: str, graph: str, n: int):
    algo = get_algorithm(algorithm)
    if graph == "class-g":
        cg = build_class_g(n)

        def world():
            setup = cg.make_setup(
                seed=1, bandwidth="LOCAL", knowledge=Knowledge.KT0
            )
            sched = WakeSchedule({v: 0.0 for v in cg.centers})
            return setup, algo, Adversary(sched, UnitDelay())

        return world
    g = {"cycle": cycle_graph, "star": star_graph}[graph](n)

    def world():
        setup = make_setup(
            g, knowledge=Knowledge.KT0, bandwidth="LOCAL", seed=1
        )
        return setup, algo, Adversary(WakeSchedule({0: 0.0}), UnitDelay())

    return world


def run_case(mode: str, algorithm: str, graph: str, n: int,
             repeats: int = 3) -> dict:
    world = _world(algorithm, graph, n)
    best_wall = float("inf")
    schedules = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        if mode == "explore":
            result = explore(world, max_schedules=5_000)
            assert result.stats.violations == 0, "bench workload violated"
            schedules = result.stats.schedules
        else:
            wc = worstcase_search(
                world, "time", beam_width=4, horizon=8, branch_cap=2
            )
            schedules = wc.evaluations
        best_wall = min(best_wall, time.perf_counter() - t0)
    return {
        "mode": mode,
        "algorithm": algorithm,
        "graph": graph,
        "n": n,
        "schedules": schedules,
        "wall_s": best_wall,
        "schedules_per_sec": (
            schedules / best_wall if best_wall > 0 else 0.0
        ),
    }


def run_bench(cases=CASES, repeats: int = 3, quiet: bool = False) -> dict:
    recs = []
    for mode, algorithm, graph, n in cases:
        rec = run_case(mode, algorithm, graph, n, repeats=repeats)
        recs.append(rec)
        if not quiet:
            print(
                f"{mode:9s} {algorithm:14s} {graph:8s} n={n:3d}  "
                f"{rec['schedules']:6d} schedules  "
                f"{rec['wall_s']*1e3:8.1f} ms  "
                f"{rec['schedules_per_sec']:10.1f} schedules/s"
            )
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "profile": PROFILE,
        "repeats": repeats,
        "cases": recs,
    }


def validate(payload: dict) -> list:
    """Schema problems in a bench payload (empty list = valid)."""
    problems = []
    for key in ("schema", "created", "python", "profile", "cases"):
        if key not in payload:
            problems.append(f"missing top-level field {key!r}")
    for i, case in enumerate(payload.get("cases", [])):
        for f in CASE_FIELDS:
            if f not in case:
                problems.append(f"case #{i} missing field {f!r}")
    if not payload.get("cases"):
        problems.append("no cases recorded")
    return problems


# ----------------------------------------------------------------------
# pytest hook: a tiny smoke run so `pytest benchmarks/` covers the bench
# ----------------------------------------------------------------------
def test_schedule_search_bench_smoke():
    payload = run_bench(
        cases=(("explore", "flooding", "cycle", 3),
               ("worstcase", "flooding", "class-g", 4)),
        repeats=1,
        quiet=True,
    )
    assert validate(payload) == []
    for case in payload["cases"]:
        assert case["schedules"] > 0
        assert case["schedules_per_sec"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_check.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per case; best-of wins (default: 3)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: reduced matrix, single repeat, schema "
        "validation, no baseline overwrite (writes to --out only if "
        "given explicitly)",
    )
    args = parser.parse_args(argv)

    if args.check:
        payload = run_bench(
            cases=(("explore", "flooding", "cycle", 3),
                   ("worstcase", "flooding", "class-g", 4)),
            repeats=1,
        )
        problems = validate(payload)
        if problems:
            for p in problems:
                print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
            return 1
        if args.out != parser.get_default("out"):
            Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {args.out}")
        print("bench check ok")
        return 0

    payload = run_bench(repeats=args.repeats)
    problems = validate(payload)
    if problems:
        for p in problems:
            print(f"BENCH SCHEMA ERROR: {p}", file=sys.stderr)
        return 1
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
