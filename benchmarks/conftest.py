"""Shared helpers for the benchmark suite.

Every bench in this directory reproduces one Table-1 row or one figure
of the paper (see DESIGN.md §4 for the full index).  Benches do three
things:

1. sweep the relevant parameter (n, beta, k, ...) and print a
   paper-style table of the measured quantities;
2. assert the *shape* of the paper's bound (fitted exponents, "who
   wins" orderings) with generous tolerances;
3. expose one representative execution to pytest-benchmark for timing.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def bench_sizes():
    """Network sizes used by the n-sweeps; chosen so the full bench
    suite completes in a couple of minutes."""
    return [64, 128, 256, 512]


@pytest.fixture(scope="session")
def small_bench_sizes():
    return [32, 64, 128]


def pytest_collection_modifyitems(config, items):
    """Keep the shape-assertion benches alive under --benchmark-only.

    pytest-benchmark skips any test that does not use its fixture when
    --benchmark-only is given.  The table/shape checks in this
    directory *are* the benchmarks of record (they print the measured
    Table-1 rows), so we register the fixture on them too; tests that
    never call it simply contribute no timing row.
    """
    try:
        benchmark_only = config.getoption("--benchmark-only")
    except (ValueError, KeyError):
        return
    if not benchmark_only:
        return
    for item in items:
        fixturenames = getattr(item, "fixturenames", None)
        if fixturenames is not None and "benchmark" not in fixturenames:
            fixturenames.append("benchmark")
