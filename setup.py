"""Setup shim so `setup.py develop` works offline (no `wheel` package
available in this environment; PEP 660 editable installs need it)."""
from setuptools import setup

setup()
